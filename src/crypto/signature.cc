#include "crypto/signature.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "crypto/ed25519.h"
#include "crypto/hmac.h"

namespace massbft {

const char* CryptoSchemeName(CryptoScheme scheme) {
  switch (scheme) {
    case CryptoScheme::kSimulatedHmac:
      return "hmac-sim";
    case CryptoScheme::kEd25519:
      return "ed25519";
  }
  return "unknown";
}

bool SignatureScheme::VerifyBatch(const std::vector<const KeyPair*>& keys,
                                  const uint8_t* data, size_t len,
                                  const std::vector<const Signature*>& sigs)
    const {
  MASSBFT_CHECK(keys.size() == sigs.size());
  for (size_t i = 0; i < keys.size(); ++i)
    if (!Verify(*keys[i], data, len, *sigs[i])) return false;
  return true;
}

// ------------------------------------------------------------- HMAC sim

KeyPair SimulatedHmacScheme::DeriveKeyPair(NodeId node) const {
  // Matches the original simulated-PKI derivation so pre-scheme fixtures
  // (fuzz corpus, golden results) stay byte-identical.
  uint32_t packed = node.Packed();
  Bytes seed = ToBytes("massbft-node-key:");
  seed.push_back(static_cast<uint8_t>(packed >> 24));
  seed.push_back(static_cast<uint8_t>(packed >> 16));
  seed.push_back(static_cast<uint8_t>(packed >> 8));
  seed.push_back(static_cast<uint8_t>(packed));
  Digest d = Sha256::Hash(seed);
  KeyPair kp;
  kp.secret = Bytes(d.begin(), d.end());
  return kp;  // pub stays empty: HMAC verification is symmetric.
}

Signature SimulatedHmacScheme::Sign(const KeyPair& key, const uint8_t* data,
                                    size_t len) const {
  Digest mac = HmacSha256(key.secret, data, len);
  Signature sig;
  // Fill both halves so the signature has the full 64-byte entropy/shape.
  std::memcpy(sig.data(), mac.data(), 32);
  Digest second = Sha256::Hash(mac.data(), mac.size());
  std::memcpy(sig.data() + 32, second.data(), 32);
  return sig;
}

bool SimulatedHmacScheme::Verify(const KeyPair& key, const uint8_t* data,
                                 size_t len, const Signature& sig) const {
  Signature expected = Sign(key, data, len);
  return std::memcmp(expected.data(), sig.data(), sig.size()) == 0;
}

// -------------------------------------------------------------- ed25519

KeyPair Ed25519Scheme::DeriveKeyPair(NodeId node) const {
  // The 32-byte seed is derived, not sampled: clusters stay reproducible
  // (rule D1) and every process derives the same keys without exchange.
  uint32_t packed = node.Packed();
  Bytes material = ToBytes("massbft-ed25519-seed:");
  material.push_back(static_cast<uint8_t>(packed >> 24));
  material.push_back(static_cast<uint8_t>(packed >> 16));
  material.push_back(static_cast<uint8_t>(packed >> 8));
  material.push_back(static_cast<uint8_t>(packed));
  Digest d = Sha256::Hash(material);

  ed25519::SecretKey secret;
  std::memcpy(secret.data(), d.data(), secret.size());
  ed25519::PublicKey pub = ed25519::DerivePublicKey(secret);

  KeyPair kp;
  kp.secret = Bytes(secret.begin(), secret.end());
  kp.pub = Bytes(pub.begin(), pub.end());
  return kp;
}

Signature Ed25519Scheme::Sign(const KeyPair& key, const uint8_t* data,
                              size_t len) const {
  MASSBFT_CHECK(key.secret.size() == 32 && key.pub.size() == 32);
  ed25519::SecretKey secret;
  ed25519::PublicKey pub;
  std::memcpy(secret.data(), key.secret.data(), secret.size());
  std::memcpy(pub.data(), key.pub.data(), pub.size());
  return ed25519::Sign(secret, pub, data, len);
}

bool Ed25519Scheme::Verify(const KeyPair& key, const uint8_t* data, size_t len,
                           const Signature& sig) const {
  if (key.pub.size() != 32) return false;
  ed25519::PublicKey pub;
  std::memcpy(pub.data(), key.pub.data(), pub.size());
  return ed25519::Verify(pub, data, len, sig);
}

bool Ed25519Scheme::VerifyBatch(const std::vector<const KeyPair*>& keys,
                                const uint8_t* data, size_t len,
                                const std::vector<const Signature*>& sigs)
    const {
  MASSBFT_CHECK(keys.size() == sigs.size());
  std::vector<ed25519::PublicKey> pubs(keys.size());
  std::vector<ed25519::BatchItem> items(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i]->pub.size() != 32) return false;
    std::memcpy(pubs[i].data(), keys[i]->pub.data(), pubs[i].size());
    items[i] = {&pubs[i], sigs[i]};  // Signature IS ed25519::Sig (64 bytes).
  }
  return ed25519::VerifyBatch(items, data, len);
}

// ----------------------------------------------------------- KeyRegistry

namespace {

std::unique_ptr<SignatureScheme> MakeScheme(CryptoScheme scheme) {
  switch (scheme) {
    case CryptoScheme::kSimulatedHmac:
      return std::make_unique<SimulatedHmacScheme>();
    case CryptoScheme::kEd25519:
      return std::make_unique<Ed25519Scheme>();
  }
  MASSBFT_CHECK(false);
  return nullptr;
}

}  // namespace

KeyRegistry::KeyRegistry(CryptoScheme scheme)
    : scheme_id_(scheme), scheme_(MakeScheme(scheme)) {}

std::vector<NodeId> KeyRegistry::RegisteredNodes() const {
  std::vector<NodeId> nodes;
  MutexLock lock(&keys_mu_);
  nodes.reserve(keys_.size());
  // Hash-order walk is safe: sorted below before becoming observable.
  for (const auto& [packed, key] : keys_)
    nodes.push_back(NodeId::FromPacked(packed));
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

size_t KeyRegistry::num_nodes() const {
  MutexLock lock(&keys_mu_);
  return keys_.size();
}

void KeyRegistry::RegisterNode(NodeId node) {
  uint32_t packed = node.Packed();
  {
    MutexLock lock(&keys_mu_);
    if (keys_.contains(packed)) return;
  }
  // Derivation (for ed25519: a base-point scalar multiplication) runs
  // outside the lock; a benign double-derive races to the same value.
  KeyPair kp = scheme_->DeriveKeyPair(node);
  MutexLock lock(&keys_mu_);
  keys_.try_emplace(packed, std::move(kp));
}

const KeyPair* KeyRegistry::FindKey(NodeId node) const {
  MutexLock lock(&keys_mu_);
  auto it = keys_.find(node.Packed());
  // Element addresses are stable under unordered_map insertion and nodes
  // are never erased, so escaping the pointer past the lock is sound.
  return it == keys_.end() ? nullptr : &it->second;
}

Signature KeyRegistry::Sign(NodeId node, const uint8_t* data,
                            size_t len) const {
  const KeyPair* key = FindKey(node);
  MASSBFT_CHECK(key != nullptr);
  return scheme_->Sign(*key, data, len);
}

bool KeyRegistry::Verify(NodeId node, const uint8_t* data, size_t len,
                         const Signature& sig) const {
  const KeyPair* key = FindKey(node);
  if (key == nullptr) return false;
  scalar_verifies_.fetch_add(1, std::memory_order_relaxed);
  return scheme_->Verify(*key, data, len, sig);
}

bool KeyRegistry::VerifyBatch(const std::vector<NodeId>& nodes,
                              const uint8_t* data, size_t len,
                              const std::vector<const Signature*>& sigs)
    const {
  MASSBFT_CHECK(nodes.size() == sigs.size());
  std::vector<const KeyPair*> keys(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    keys[i] = FindKey(nodes[i]);
    if (keys[i] == nullptr) return false;
  }
  if (nodes.size() < 2) {
    // Nothing to amortize; count it as the scalar work it is.
    scalar_verifies_.fetch_add(nodes.size(), std::memory_order_relaxed);
    return nodes.empty() || scheme_->Verify(*keys[0], data, len, *sigs[0]);
  }
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  batch_signatures_.fetch_add(nodes.size(), std::memory_order_relaxed);
  if (scheme_->VerifyBatch(keys, data, len, sigs)) return true;
  batch_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

VerifyStats KeyRegistry::verify_stats() const {
  VerifyStats s;
  s.scalar_verifies = scalar_verifies_.load(std::memory_order_relaxed);
  s.batch_signatures = batch_signatures_.load(std::memory_order_relaxed);
  s.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  s.batch_fallbacks = batch_fallbacks_.load(std::memory_order_relaxed);
  return s;
}

double KeyRegistry::verify_batch_ratio() const {
  VerifyStats s = verify_stats();
  uint64_t total = s.scalar_verifies + s.batch_signatures;
  if (total == 0) return 0;
  return static_cast<double>(s.batch_signatures) / static_cast<double>(total);
}

}  // namespace massbft
