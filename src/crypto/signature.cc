#include "crypto/signature.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "crypto/hmac.h"

namespace massbft {

std::vector<NodeId> KeyRegistry::RegisteredNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(keys_.size());
  // Hash-order walk is safe: sorted below before becoming observable.
  // lint: unordered-iter-ok(sorted before the dump escapes)
  for (const auto& [packed, key] : keys_)
    nodes.push_back(NodeId::FromPacked(packed));
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

void KeyRegistry::RegisterNode(NodeId node) {
  uint32_t packed = node.Packed();
  if (keys_.contains(packed)) return;
  // Derive a per-node secret deterministically so clusters are reproducible.
  Bytes seed = ToBytes("massbft-node-key:");
  seed.push_back(static_cast<uint8_t>(packed >> 24));
  seed.push_back(static_cast<uint8_t>(packed >> 16));
  seed.push_back(static_cast<uint8_t>(packed >> 8));
  seed.push_back(static_cast<uint8_t>(packed));
  Digest d = Sha256::Hash(seed);
  keys_[packed] = Bytes(d.begin(), d.end());
}

Signature KeyRegistry::Sign(NodeId node, const uint8_t* data,
                            size_t len) const {
  auto it = keys_.find(node.Packed());
  MASSBFT_CHECK(it != keys_.end());
  Digest mac = HmacSha256(it->second, data, len);
  Signature sig;
  // Fill both halves so the signature has the full 64-byte entropy/shape.
  std::memcpy(sig.data(), mac.data(), 32);
  Digest second = Sha256::Hash(mac.data(), mac.size());
  std::memcpy(sig.data() + 32, second.data(), 32);
  return sig;
}

bool KeyRegistry::Verify(NodeId node, const uint8_t* data, size_t len,
                         const Signature& sig) const {
  auto it = keys_.find(node.Packed());
  if (it == keys_.end()) return false;
  Signature expected = Sign(node, data, len);
  return std::memcmp(expected.data(), sig.data(), sig.size()) == 0;
}

}  // namespace massbft
