#ifndef MASSBFT_CRYPTO_ED25519_H_
#define MASSBFT_CRYPTO_ED25519_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace massbft {

/// Portable, dependency-free ed25519 (RFC 8032), validated against the RFC
/// §7.1 test vectors in tests/crypto_test.cc. Field arithmetic uses five
/// 51-bit limbs over unsigned __int128; point arithmetic uses extended
/// twisted-Edwards coordinates. All verification is variable-time — every
/// input to Verify is public (signatures on consensus messages), so no
/// constant-time hardening is attempted on that path.
///
/// Strictness (anti-malleability, both per RFC 8032 MUSTs):
///   * the scalar half `s` of a signature is rejected unless s < L;
///   * point encodings with a non-canonical y coordinate (y >= p) are
///     rejected.
namespace ed25519 {

/// 32-byte secret seed (RFC 8032 "private key").
using SecretKey = std::array<uint8_t, 32>;
/// 32-byte compressed public point A.
using PublicKey = std::array<uint8_t, 32>;
/// 64-byte signature: compressed R followed by little-endian s.
using Sig = std::array<uint8_t, 64>;

/// Derives the public key for a secret seed (RFC 8032 §5.1.5).
[[nodiscard]] PublicKey DerivePublicKey(const SecretKey& secret);

/// Signs `len` bytes at `data` (RFC 8032 §5.1.6, deterministic nonce).
[[nodiscard]] Sig Sign(const SecretKey& secret, const PublicKey& public_key,
                       const uint8_t* data, size_t len);

/// Verifies one signature (RFC 8032 §5.1.7, cofactorless group equation
/// [s]B == R + [h]A with strict range checks on s and the point
/// encodings).
[[nodiscard]] bool Verify(const PublicKey& public_key, const uint8_t* data,
                          size_t len, const Sig& sig);

/// One (public key, signature) pair of a batch.
struct BatchItem {
  const PublicKey* public_key = nullptr;
  const Sig* sig = nullptr;
};

/// Batch verification of n signatures over ONE message — the certificate
/// shape: 2f+1 group members all sign the same entry digest. Checks the
/// random-linear-combination equation
///
///     [sum_i z_i s_i] B  -  sum_i [z_i] R_i  -  sum_i [z_i h_i] A_i  ==  O
///
/// with one interleaved multi-scalar multiplication, sharing the ~255
/// doublings across all 2n+1 terms (the speedup over n scalar Verify
/// calls; see DESIGN.md §17). The 128-bit coefficients z_i are derived by
/// hashing the batch contents — deterministic by design (rule D1: no
/// ambient randomness in src/), which is sound against forgers who cannot
/// predict a future batch's composition; an adversary who fully controls
/// the batch contents could in principle engineer cancellation, so a
/// `false` verdict is authoritative but callers treat `true` as "no forger
/// present" only for inputs that already bind honest context (certificate
/// digests do).
///
/// Returns true iff the combined equation holds. On false the caller
/// falls back to per-signature Verify to name the forger. Empty batches
/// verify trivially; a single-item batch degrades to Verify.
[[nodiscard]] bool VerifyBatch(const std::vector<BatchItem>& items,
                               const uint8_t* data, size_t len);

}  // namespace ed25519
}  // namespace massbft

#endif  // MASSBFT_CRYPTO_ED25519_H_
