#ifndef MASSBFT_CRYPTO_HMAC_H_
#define MASSBFT_CRYPTO_HMAC_H_

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace massbft {

/// HMAC-SHA256 (RFC 2104). Backs the simulated-PKI signature scheme in
/// crypto/signature.h; validated against RFC 4231 test vectors.
Digest HmacSha256(const Bytes& key, const uint8_t* data, size_t len);
inline Digest HmacSha256(const Bytes& key, const Bytes& data) {
  return HmacSha256(key, data.data(), data.size());
}

}  // namespace massbft

#endif  // MASSBFT_CRYPTO_HMAC_H_
