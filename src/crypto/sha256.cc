#include "crypto/sha256.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "common/bytes.h"
#include "common/cpu.h"
#include "common/logging.h"

namespace massbft {

namespace {

constexpr uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

constexpr uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

inline uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

}  // namespace

std::string DigestToHex(const Digest& d) { return ToHex(d.data(), d.size()); }

namespace internal_sha256 {

// One compression round; callers rotate the register names instead of
// shuffling eight values per round.
#define MASSBFT_SHA_ROUND(a, b, c, d, e, f, g, h, i, w)                     \
  t1 = (h) + (Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25)) +                     \
       (((e) & (f)) ^ (~(e) & (g))) + kRound[i] + (w);                      \
  (d) += t1;                                                                \
  (h) = t1 + (Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22)) +                     \
        (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));

// Message schedule over a 16-word ring: w[i] from w[i-2], w[i-7], w[i-15],
// w[i-16].
#define MASSBFT_SHA_W(i)                                                    \
  (w[(i) & 15] +=                                                           \
   (Rotr(w[((i) - 2) & 15], 17) ^ Rotr(w[((i) - 2) & 15], 19) ^             \
    (w[((i) - 2) & 15] >> 10)) +                                            \
   w[((i) - 7) & 15] +                                                      \
   (Rotr(w[((i) - 15) & 15], 7) ^ Rotr(w[((i) - 15) & 15], 18) ^            \
    (w[((i) - 15) & 15] >> 3)))

#define MASSBFT_SHA_WLOAD(i) w[(i) & 15]

#define MASSBFT_SHA_8ROUNDS(i, W)                                           \
  MASSBFT_SHA_ROUND(a, b, c, d, e, f, g, h, (i) + 0, W((i) + 0))            \
  MASSBFT_SHA_ROUND(h, a, b, c, d, e, f, g, (i) + 1, W((i) + 1))            \
  MASSBFT_SHA_ROUND(g, h, a, b, c, d, e, f, (i) + 2, W((i) + 2))            \
  MASSBFT_SHA_ROUND(f, g, h, a, b, c, d, e, (i) + 3, W((i) + 3))            \
  MASSBFT_SHA_ROUND(e, f, g, h, a, b, c, d, (i) + 4, W((i) + 4))            \
  MASSBFT_SHA_ROUND(d, e, f, g, h, a, b, c, (i) + 5, W((i) + 5))            \
  MASSBFT_SHA_ROUND(c, d, e, f, g, h, a, b, (i) + 6, W((i) + 6))            \
  MASSBFT_SHA_ROUND(b, c, d, e, f, g, h, a, (i) + 7, W((i) + 7))

void ProcessBlocksScalar(uint32_t state[8], const uint8_t* data,
                         size_t n_blocks) {
  uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  while (n_blocks-- > 0) {
    uint32_t w[16];
    for (int i = 0; i < 16; ++i) w[i] = LoadBe32(data + 4 * i);
    uint32_t t1;
    MASSBFT_SHA_8ROUNDS(0, MASSBFT_SHA_WLOAD)
    MASSBFT_SHA_8ROUNDS(8, MASSBFT_SHA_WLOAD)
    MASSBFT_SHA_8ROUNDS(16, MASSBFT_SHA_W)
    MASSBFT_SHA_8ROUNDS(24, MASSBFT_SHA_W)
    MASSBFT_SHA_8ROUNDS(32, MASSBFT_SHA_W)
    MASSBFT_SHA_8ROUNDS(40, MASSBFT_SHA_W)
    MASSBFT_SHA_8ROUNDS(48, MASSBFT_SHA_W)
    MASSBFT_SHA_8ROUNDS(56, MASSBFT_SHA_W)
    a = state[0] += a;
    b = state[1] += b;
    c = state[2] += c;
    d = state[3] += d;
    e = state[4] += e;
    f = state[5] += f;
    g = state[6] += g;
    h = state[7] += h;
    data += 64;
  }
}

#undef MASSBFT_SHA_8ROUNDS
#undef MASSBFT_SHA_WLOAD
#undef MASSBFT_SHA_W
#undef MASSBFT_SHA_ROUND

#if defined(__x86_64__) || defined(__i386__)

// SHA-NI compression: two sha256rnds2 per 4 rounds, with the message
// schedule carried in four 4-word vectors (msgs[g & 3] holds words
// w[4g .. 4g+3]). Layout shuffles at entry/exit translate the linear
// a..h state into the ABEF/CDGH register split the instructions expect.
__attribute__((target("sha,sse4.1"))) void ProcessBlocksShaNi(
    uint32_t state[8], const uint8_t* data, size_t n_blocks) {
  const __m128i kBswapMask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);            // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);      // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  while (n_blocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msgs[4];
    for (int i = 0; i < 4; ++i) {
      msgs[i] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * i)),
          kBswapMask);
    }

    // Full unroll keeps msgs[] in xmm registers across the 16 groups.
#pragma GCC unroll 16
    for (int g = 0; g < 16; ++g) {
      __m128i wk = _mm_add_epi32(
          msgs[g & 3], _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                           &kRound[4 * g])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      wk = _mm_shuffle_epi32(wk, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, wk);
      if (g < 12) {
        // w[i-7..i-4] via alignr, w[i-16]+sigma0(w[i-15]) via msg1,
        // sigma1(w[i-2]) folded in by msg2.
        __m128i t = _mm_alignr_epi8(msgs[(g + 3) & 3], msgs[(g + 2) & 3], 4);
        msgs[g & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(
                _mm_sha256msg1_epu32(msgs[g & 3], msgs[(g + 1) & 3]), t),
            msgs[(g + 3) & 3]);
      }
    }

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    data += 64;
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);         // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);      // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);   // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);      // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // x86

namespace {

using BlockFn = void (*)(uint32_t*, const uint8_t*, size_t);

struct Dispatch {
  Sha256::Impl impl = Sha256::Impl::kScalar;
  BlockFn fn = &ProcessBlocksScalar;
};

Dispatch DispatchFor(Sha256::Impl impl) {
  Dispatch d;
  d.impl = impl;
#if defined(__x86_64__) || defined(__i386__)
  if (impl == Sha256::Impl::kShaNi) d.fn = &ProcessBlocksShaNi;
#endif
  return d;
}

Sha256::Impl ResolveImpl(const std::string& override_mode,
                         const CpuFeatures& cpu) {
  // Only "scalar" pins SHA: the ssse3/avx2 values cap the GF(2^8) kernel
  // tier and say nothing about the SHA extensions.
  if (override_mode == "scalar") return Sha256::Impl::kScalar;
  if (cpu.sha_ni) return Sha256::Impl::kShaNi;
  return Sha256::Impl::kScalar;
}

Dispatch& MutableDispatch() {
  static Dispatch dispatch = [] {
    Sha256::Impl impl = ResolveImpl(SimdOverride(), GetCpuFeatures());
    MASSBFT_LOG(kInfo) << "sha256: dispatching compression to "
                       << Sha256::ImplName(impl)
                       << (SimdOverride().empty()
                               ? ""
                               : " (MASSBFT_SIMD=" + SimdOverride() + ")");
    return DispatchFor(impl);
  }();
  return dispatch;
}

}  // namespace

}  // namespace internal_sha256

void Sha256::Reset() {
  std::memcpy(state_, kInit, sizeof(state_));
  bit_count_ = 0;
  buffer_len_ = 0;
}

void Sha256::Update(const uint8_t* data, size_t len) {
  bit_count_ += static_cast<uint64_t>(len) * 8;
  const auto fn = internal_sha256::MutableDispatch().fn;
  if (buffer_len_ > 0) {
    size_t take = 64 - buffer_len_;
    if (take > len) take = len;
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ < 64) return;
    fn(state_, buffer_, 1);
    buffer_len_ = 0;
  }
  // Bulk path: all whole blocks in one kernel call.
  size_t n_blocks = len / 64;
  if (n_blocks > 0) {
    fn(state_, data, n_blocks);
    data += n_blocks * 64;
    len -= n_blocks * 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, data, len);
    buffer_len_ = len;
  }
}

Digest Sha256::Finish() {
  // Build the padded tail (0x80, zeros, 64-bit big-endian length) in a
  // local one- or two-block staging area and compress it in one call.
  uint8_t tail[128];
  size_t n = buffer_len_;
  std::memcpy(tail, buffer_, n);
  tail[n++] = 0x80;
  size_t total = (n <= 56) ? 64 : 128;
  std::memset(tail + n, 0, total - 8 - n);
  for (int i = 0; i < 8; ++i)
    tail[total - 8 + i] = static_cast<uint8_t>(bit_count_ >> (56 - 8 * i));
  internal_sha256::MutableDispatch().fn(state_, tail, total / 64);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Digest Sha256::Hash(const uint8_t* data, size_t len) {
  Sha256 h;
  h.Update(data, len);
  return h.Finish();
}

Sha256::Impl Sha256::ActiveImpl() {
  return internal_sha256::MutableDispatch().impl;
}

const char* Sha256::ImplName(Impl impl) {
  switch (impl) {
    case Impl::kScalar:
      return "scalar";
    case Impl::kShaNi:
      return "sha-ni";
  }
  return "unknown";
}

void Sha256::ForceImplForTest(Impl impl) {
  internal_sha256::MutableDispatch() = internal_sha256::DispatchFor(impl);
}

void Sha256::RestoreImplDispatch() {
  internal_sha256::MutableDispatch() = internal_sha256::DispatchFor(
      internal_sha256::ResolveImpl(SimdOverride(), GetCpuFeatures()));
}

}  // namespace massbft
