#ifndef MASSBFT_CRYPTO_SIGNATURE_H_
#define MASSBFT_CRYPTO_SIGNATURE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/lock_rank.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "crypto/sha256.h"

namespace massbft {

/// Globally unique node identifier: (group id, node index within group)
/// packed into 32 bits. Group ids and node indices are small (<= 2^16).
struct NodeId {
  uint16_t group = 0;
  uint16_t index = 0;

  uint32_t Packed() const {
    return (static_cast<uint32_t>(group) << 16) | index;
  }
  static NodeId FromPacked(uint32_t v) {
    return NodeId{static_cast<uint16_t>(v >> 16),
                  static_cast<uint16_t>(v & 0xFFFF)};
  }

  friend bool operator==(const NodeId&, const NodeId&) = default;
  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

/// 64-byte signature — the ed25519 wire size the paper uses. Both backends
/// emit exactly this shape, so message-size accounting is identical in
/// simulated and real-crypto modes.
using Signature = std::array<uint8_t, 64>;

/// Which signature backend a KeyRegistry runs (DESIGN.md §17).
enum class CryptoScheme {
  /// HMAC-SHA256 stand-in: microseconds per op, byte-compatible wire shape.
  /// The sim figures run thousands of nodes in one process; real curve math
  /// there would only slow the harness without changing any plotted result
  /// (nodes charge simulated sign/verify CPU costs instead). Kept as the
  /// sim default for exactly that reason.
  kSimulatedHmac,
  /// Real RFC 8032 ed25519 (src/crypto/ed25519.h) — the RealCluster
  /// default. Signatures are actual curve points; verification does the
  /// group-equation check, batched on the certificate path.
  kEd25519,
};

/// Short stable name for logs / result JSON ("hmac-sim" / "ed25519").
[[nodiscard]] const char* CryptoSchemeName(CryptoScheme scheme);

/// One node's key material. `secret` is backend-defined (HMAC key or
/// ed25519 seed); `pub` is empty for HMAC (verification is symmetric) and
/// the 32-byte compressed public point for ed25519.
struct KeyPair {
  Bytes secret;
  Bytes pub;
};

/// Backend seam: everything KeyRegistry needs from a signature algorithm.
/// Implementations are stateless (all state lives in the KeyPair), so one
/// instance serves every node and every thread.
class SignatureScheme {
 public:
  virtual ~SignatureScheme() = default;

  /// Deterministically derives `node`'s key material (reproducible
  /// clusters; the registry is the trusted key-distribution channel a real
  /// deployment gets from its PKI).
  [[nodiscard]] virtual KeyPair DeriveKeyPair(NodeId node) const = 0;

  [[nodiscard]] virtual Signature Sign(const KeyPair& key,
                                       const uint8_t* data,
                                       size_t len) const = 0;

  [[nodiscard]] virtual bool Verify(const KeyPair& key, const uint8_t* data,
                                    size_t len, const Signature& sig) const = 0;

  /// Verifies n signatures over ONE message (the certificate shape).
  /// `keys` and `sigs` are parallel arrays. Default: a scalar loop;
  /// ed25519 overrides with a single multi-scalar multiplication. A false
  /// verdict only says "at least one is bad" — callers fall back to Verify
  /// per entry to name the forger.
  [[nodiscard]] virtual bool VerifyBatch(
      const std::vector<const KeyPair*>& keys, const uint8_t* data, size_t len,
      const std::vector<const Signature*>& sigs) const;
};

/// Simulated backend (the pre-ed25519 "SIMULATED PKI" documented
/// substitution): HMAC-SHA256 over the message, second half a hash of the
/// first so the signature has full 64-byte shape. Unforgeable within the
/// simulation, free of curve math.
class SimulatedHmacScheme final : public SignatureScheme {
 public:
  [[nodiscard]] KeyPair DeriveKeyPair(NodeId node) const override;
  [[nodiscard]] Signature Sign(const KeyPair& key, const uint8_t* data,
                               size_t len) const override;
  [[nodiscard]] bool Verify(const KeyPair& key, const uint8_t* data,
                            size_t len, const Signature& sig) const override;
};

/// Real ed25519 backend (RFC 8032, src/crypto/ed25519.{h,cc}).
class Ed25519Scheme final : public SignatureScheme {
 public:
  [[nodiscard]] KeyPair DeriveKeyPair(NodeId node) const override;
  [[nodiscard]] Signature Sign(const KeyPair& key, const uint8_t* data,
                               size_t len) const override;
  [[nodiscard]] bool Verify(const KeyPair& key, const uint8_t* data,
                            size_t len, const Signature& sig) const override;
  [[nodiscard]] bool VerifyBatch(
      const std::vector<const KeyPair*>& keys, const uint8_t* data, size_t len,
      const std::vector<const Signature*>& sigs) const override;
};

/// Counters for the verification paths, for the `verify_batch_ratio`
/// result metric: what fraction of all signature checks rode the batched
/// certificate path instead of scalar Verify.
struct VerifyStats {
  uint64_t scalar_verifies = 0;   // single-signature Verify calls
  uint64_t batch_signatures = 0;  // signatures checked inside VerifyBatch
  uint64_t batch_calls = 0;       // VerifyBatch invocations (>= 2 sigs)
  uint64_t batch_fallbacks = 0;   // batches that failed and went scalar
};

/// Key directory for a cluster: derives, stores, and applies per-node key
/// material through a pluggable SignatureScheme. Thread-safe: RealCluster
/// registers nodes at setup but node threads sign/verify concurrently, so
/// the key map is behind a ranked mutex; the crypto itself runs outside
/// the lock (unordered_map references are stable under insertion).
class KeyRegistry {
 public:
  explicit KeyRegistry(CryptoScheme scheme = CryptoScheme::kSimulatedHmac);

  /// Creates and registers a key pair for `node`. Idempotent per node.
  void RegisterNode(NodeId node);

  /// Signs `len` bytes at `data` with the node's key.
  /// Dies if the node was never registered (a harness bug, not input error).
  [[nodiscard]] Signature Sign(NodeId node, const uint8_t* data,
                               size_t len) const;
  [[nodiscard]] Signature Sign(NodeId node, const Bytes& data) const {
    return Sign(node, data.data(), data.size());
  }

  /// Verifies that `sig` is `node`'s signature over the data. Ignoring the
  /// verdict would accept forgeries, hence [[nodiscard]] (DESIGN.md §11 D4).
  [[nodiscard]] bool Verify(NodeId node, const uint8_t* data, size_t len,
                            const Signature& sig) const;
  [[nodiscard]] bool Verify(NodeId node, const Bytes& data,
                            const Signature& sig) const {
    return Verify(node, data.data(), data.size(), sig);
  }

  /// Verifies `sigs[i]` as `nodes[i]`'s signature over one shared message
  /// — the certificate hot path (2f+1 signatures over one entry digest) —
  /// in a single batched pass when the scheme supports it. Returns true
  /// iff ALL signatures are valid and every node is registered. On false,
  /// callers that need the culprit re-check per node with Verify.
  [[nodiscard]] bool VerifyBatch(const std::vector<NodeId>& nodes,
                                 const uint8_t* data, size_t len,
                                 const std::vector<const Signature*>& sigs)
      const;

  size_t num_nodes() const;

  /// All registered nodes in ascending (group, index) order. Any
  /// result-observable dump of the registry must use this rather than
  /// walking the hash map, whose order is hash-seed dependent (DESIGN.md
  /// §11, rule D2).
  [[nodiscard]] std::vector<NodeId> RegisteredNodes() const;

  [[nodiscard]] CryptoScheme scheme() const { return scheme_id_; }
  [[nodiscard]] const char* scheme_name() const {
    return CryptoSchemeName(scheme_id_);
  }

  /// Snapshot of the verification-path counters (relaxed reads).
  [[nodiscard]] VerifyStats verify_stats() const;
  /// batch_signatures / (batch_signatures + scalar_verifies); 0 when no
  /// verification happened.
  [[nodiscard]] double verify_batch_ratio() const;

 private:
  /// Looks up a registered key pair; nullptr if absent. The returned
  /// pointer stays valid for the registry's lifetime (node keys are never
  /// erased), so callers may use it after the lock is released.
  const KeyPair* FindKey(NodeId node) const;

  CryptoScheme scheme_id_;
  std::unique_ptr<SignatureScheme> scheme_;

  mutable RankedMutex keys_mu_{"crypto.keys_mu", LockRank::kCryptoKeys};
  std::unordered_map<uint32_t, KeyPair> keys_ MASSBFT_GUARDED_BY(keys_mu_);

  // Plain counters, not guarded: bumped on the hot verify path where a
  // shared lock would serialize every node thread.
  mutable std::atomic<uint64_t> scalar_verifies_{0};
  mutable std::atomic<uint64_t> batch_signatures_{0};
  mutable std::atomic<uint64_t> batch_calls_{0};
  mutable std::atomic<uint64_t> batch_fallbacks_{0};
};

}  // namespace massbft

#endif  // MASSBFT_CRYPTO_SIGNATURE_H_
