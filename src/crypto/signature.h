#ifndef MASSBFT_CRYPTO_SIGNATURE_H_
#define MASSBFT_CRYPTO_SIGNATURE_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace massbft {

/// Globally unique node identifier: (group id, node index within group)
/// packed into 32 bits. Group ids and node indices are small (<= 2^16).
struct NodeId {
  uint16_t group = 0;
  uint16_t index = 0;

  uint32_t Packed() const {
    return (static_cast<uint32_t>(group) << 16) | index;
  }
  static NodeId FromPacked(uint32_t v) {
    return NodeId{static_cast<uint16_t>(v >> 16),
                  static_cast<uint16_t>(v & 0xFFFF)};
  }

  friend bool operator==(const NodeId&, const NodeId&) = default;
  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

/// 64-byte signature, matching the ED25519 wire size the paper uses so that
/// message-size accounting is faithful.
using Signature = std::array<uint8_t, 64>;

/// SIMULATED PKI (documented substitution, see DESIGN.md §2).
///
/// The paper signs with ED25519. Re-implementing curve arithmetic adds no
/// fidelity to a single-process simulation whose only adversary is our own
/// fault-injection code, so instead each node holds an HMAC-SHA256 secret
/// registered here, and verification recomputes the MAC via the registry.
/// Properties preserved:
///   * unforgeability within the simulation — tampered payloads fail
///     verification (the MAC is over the message bytes);
///   * wire size — 64 bytes per signature;
///   * CPU cost — nodes charge a configurable simulated-time cost per
///     sign/verify (sim/cpu accounting), defaulting to ED25519-like costs.
///
/// The registry is the trusted key-distribution channel a real deployment
/// gets from its PKI.
class KeyRegistry {
 public:
  KeyRegistry() = default;

  /// Creates and registers a key for `node`. Idempotent per node.
  void RegisterNode(NodeId node);

  /// Signs `len` bytes at `data` with the node's key.
  /// Dies if the node was never registered (a harness bug, not input error).
  [[nodiscard]] Signature Sign(NodeId node, const uint8_t* data,
                               size_t len) const;
  [[nodiscard]] Signature Sign(NodeId node, const Bytes& data) const {
    return Sign(node, data.data(), data.size());
  }

  /// Verifies that `sig` is `node`'s signature over the data. Ignoring the
  /// verdict would accept forgeries, hence [[nodiscard]] (DESIGN.md §11 D4).
  [[nodiscard]] bool Verify(NodeId node, const uint8_t* data, size_t len,
                            const Signature& sig) const;
  [[nodiscard]] bool Verify(NodeId node, const Bytes& data,
                            const Signature& sig) const {
    return Verify(node, data.data(), data.size(), sig);
  }

  size_t num_nodes() const { return keys_.size(); }

  /// All registered nodes in ascending (group, index) order. Any
  /// result-observable dump of the registry must use this rather than
  /// walking the hash map, whose order is hash-seed dependent (DESIGN.md
  /// §11, rule D2).
  [[nodiscard]] std::vector<NodeId> RegisteredNodes() const;

 private:
  std::unordered_map<uint32_t, Bytes> keys_;
};

}  // namespace massbft

#endif  // MASSBFT_CRYPTO_SIGNATURE_H_
