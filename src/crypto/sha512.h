#ifndef MASSBFT_CRYPTO_SHA512_H_
#define MASSBFT_CRYPTO_SHA512_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "common/bytes.h"

namespace massbft {

/// A SHA-512 digest. ed25519 (RFC 8032) hashes with SHA-512 everywhere:
/// key expansion, the deterministic nonce, and the challenge scalar.
using Digest512 = std::array<uint8_t, 64>;

/// Incremental SHA-512 (FIPS 180-4), implemented from scratch — validated
/// against the NIST known-answer vectors in tests/crypto_test.cc. Scalar
/// only: unlike SHA-256 there is no widely-available fixed-function
/// instruction for SHA-512 on our CI targets, and the ed25519 hot path is
/// dominated by curve arithmetic, not hashing.
class Sha512 {
 public:
  Sha512() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Finalizes and returns the digest. The object must be Reset() before
  /// reuse.
  [[nodiscard]] Digest512 Finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest512 Hash(const uint8_t* data, size_t len);
  [[nodiscard]] static Digest512 Hash(const Bytes& data) {
    return Hash(data.data(), data.size());
  }
  [[nodiscard]] static Digest512 Hash(std::string_view s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  void ProcessBlock(const uint8_t* block);

  uint64_t state_[8];
  /// Total message length in bytes; SHA-512's 128-bit length field only
  /// matters beyond 2^64 bits, far past anything we hash.
  uint64_t byte_count_;
  uint8_t buffer_[128];
  size_t buffer_len_;
};

}  // namespace massbft

#endif  // MASSBFT_CRYPTO_SHA512_H_
