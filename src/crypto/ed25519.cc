#include "crypto/ed25519.h"

#include <cstring>

#include "crypto/sha512.h"

namespace massbft {
namespace ed25519 {
namespace {

// ------------------------------------------------------------------ Field
// GF(2^255 - 19) in five 51-bit limbs. Products are accumulated in
// unsigned __int128; reduction folds the 2^255 overflow back in times 19.
// Limbs are kept below ~2^52 between operations, far inside the ~2^54
// bound the multiply accumulators tolerate.

using u64 = uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask = (u64{1} << 51) - 1;

struct Fe {
  u64 v[5];
};

constexpr Fe kFeZero = {{0, 0, 0, 0, 0}};
constexpr Fe kFeOne = {{1, 0, 0, 0, 0}};

void FeFromBytes(Fe* h, const uint8_t s[32]) {
  u64 limb[4];
  for (int i = 0; i < 4; ++i) {
    limb[i] = 0;
    for (int j = 0; j < 8; ++j)
      limb[i] |= static_cast<u64>(s[8 * i + j]) << (8 * j);
  }
  h->v[0] = limb[0] & kMask;
  h->v[1] = ((limb[0] >> 51) | (limb[1] << 13)) & kMask;
  h->v[2] = ((limb[1] >> 38) | (limb[2] << 26)) & kMask;
  h->v[3] = ((limb[2] >> 25) | (limb[3] << 39)) & kMask;
  h->v[4] = (limb[3] >> 12) & kMask;  // Drops bit 255 (the sign bit).
}

/// Canonical serialization: fully reduces into [0, p) first.
void FeToBytes(uint8_t s[32], const Fe& f) {
  u64 t[5] = {f.v[0], f.v[1], f.v[2], f.v[3], f.v[4]};
  // Two weak-carry passes bring every limb under 2^51 (+ epsilon on t0).
  for (int pass = 0; pass < 2; ++pass) {
    t[1] += t[0] >> 51;
    t[0] &= kMask;
    t[2] += t[1] >> 51;
    t[1] &= kMask;
    t[3] += t[2] >> 51;
    t[2] &= kMask;
    t[4] += t[3] >> 51;
    t[3] &= kMask;
    t[0] += 19 * (t[4] >> 51);
    t[4] &= kMask;
  }
  // Canonicalize: offset by 19 then by 2^255 - 19 - 19 so the subtraction
  // of p happens exactly when the value was >= p (curve25519-donna trick).
  t[0] += 19;
  t[1] += t[0] >> 51;
  t[0] &= kMask;
  t[2] += t[1] >> 51;
  t[1] &= kMask;
  t[3] += t[2] >> 51;
  t[2] &= kMask;
  t[4] += t[3] >> 51;
  t[3] &= kMask;
  t[0] += 19 * (t[4] >> 51);
  t[4] &= kMask;

  t[0] += (kMask + 1) - 19;
  t[1] += kMask;
  t[2] += kMask;
  t[3] += kMask;
  t[4] += kMask;
  t[1] += t[0] >> 51;
  t[0] &= kMask;
  t[2] += t[1] >> 51;
  t[1] &= kMask;
  t[3] += t[2] >> 51;
  t[2] &= kMask;
  t[4] += t[3] >> 51;
  t[3] &= kMask;
  t[4] &= kMask;  // Drop the 2^255 offset bit.

  u64 out[4];
  out[0] = t[0] | (t[1] << 51);
  out[1] = (t[1] >> 13) | (t[2] << 38);
  out[2] = (t[2] >> 26) | (t[3] << 25);
  out[3] = (t[3] >> 39) | (t[4] << 12);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 8; ++j)
      s[8 * i + j] = static_cast<uint8_t>(out[i] >> (8 * j));
}

/// One carry pass. Together with the call sites below this maintains the
/// global invariant that every Fe limb stays below 2^52 — which keeps
/// FeSub's 4p offset large enough to never underflow and keeps FeMul's
/// 128-bit accumulators far from overflow.
void FeWeakReduce(Fe* h) {
  h->v[1] += h->v[0] >> 51;
  h->v[0] &= kMask;
  h->v[2] += h->v[1] >> 51;
  h->v[1] &= kMask;
  h->v[3] += h->v[2] >> 51;
  h->v[2] &= kMask;
  h->v[4] += h->v[3] >> 51;
  h->v[3] &= kMask;
  h->v[0] += 19 * (h->v[4] >> 51);
  h->v[4] &= kMask;
}

void FeAdd(Fe* h, const Fe& f, const Fe& g) {
  for (int i = 0; i < 5; ++i) h->v[i] = f.v[i] + g.v[i];
  FeWeakReduce(h);
}

/// h = f - g, computed as f + 4p - g so limbs never underflow (4p because
/// g's limbs may be just under 2^52).
void FeSub(Fe* h, const Fe& f, const Fe& g) {
  h->v[0] = f.v[0] + 0x1FFFFFFFFFFFB4u - g.v[0];
  h->v[1] = f.v[1] + 0x1FFFFFFFFFFFFCu - g.v[1];
  h->v[2] = f.v[2] + 0x1FFFFFFFFFFFFCu - g.v[2];
  h->v[3] = f.v[3] + 0x1FFFFFFFFFFFFCu - g.v[3];
  h->v[4] = f.v[4] + 0x1FFFFFFFFFFFFCu - g.v[4];
  FeWeakReduce(h);
}

void FeNeg(Fe* h, const Fe& f) { FeSub(h, kFeZero, f); }

void FeCarry(Fe* h, u128 t0, u128 t1, u128 t2, u128 t3, u128 t4) {
  u64 c;
  u64 r0 = static_cast<u64>(t0) & kMask;
  c = static_cast<u64>(t0 >> 51);
  t1 += c;
  u64 r1 = static_cast<u64>(t1) & kMask;
  c = static_cast<u64>(t1 >> 51);
  t2 += c;
  u64 r2 = static_cast<u64>(t2) & kMask;
  c = static_cast<u64>(t2 >> 51);
  t3 += c;
  u64 r3 = static_cast<u64>(t3) & kMask;
  c = static_cast<u64>(t3 >> 51);
  t4 += c;
  u64 r4 = static_cast<u64>(t4) & kMask;
  c = static_cast<u64>(t4 >> 51);
  r0 += c * 19;
  c = r0 >> 51;
  r0 &= kMask;
  r1 += c;
  h->v[0] = r0;
  h->v[1] = r1;
  h->v[2] = r2;
  h->v[3] = r3;
  h->v[4] = r4;
}

void FeMul(Fe* h, const Fe& f, const Fe& g) {
  const u64 f0 = f.v[0], f1 = f.v[1], f2 = f.v[2], f3 = f.v[3], f4 = f.v[4];
  const u64 g0 = g.v[0], g1 = g.v[1], g2 = g.v[2], g3 = g.v[3], g4 = g.v[4];
  const u64 g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3,
            g4_19 = 19 * g4;
  u128 t0 = static_cast<u128>(f0) * g0 + static_cast<u128>(f1) * g4_19 +
            static_cast<u128>(f2) * g3_19 + static_cast<u128>(f3) * g2_19 +
            static_cast<u128>(f4) * g1_19;
  u128 t1 = static_cast<u128>(f0) * g1 + static_cast<u128>(f1) * g0 +
            static_cast<u128>(f2) * g4_19 + static_cast<u128>(f3) * g3_19 +
            static_cast<u128>(f4) * g2_19;
  u128 t2 = static_cast<u128>(f0) * g2 + static_cast<u128>(f1) * g1 +
            static_cast<u128>(f2) * g0 + static_cast<u128>(f3) * g4_19 +
            static_cast<u128>(f4) * g3_19;
  u128 t3 = static_cast<u128>(f0) * g3 + static_cast<u128>(f1) * g2 +
            static_cast<u128>(f2) * g1 + static_cast<u128>(f3) * g0 +
            static_cast<u128>(f4) * g4_19;
  u128 t4 = static_cast<u128>(f0) * g4 + static_cast<u128>(f1) * g3 +
            static_cast<u128>(f2) * g2 + static_cast<u128>(f3) * g1 +
            static_cast<u128>(f4) * g0;
  FeCarry(h, t0, t1, t2, t3, t4);
}

void FeSq(Fe* h, const Fe& f) { FeMul(h, f, f); }

void FeSqN(Fe* h, const Fe& f, int n) {
  *h = f;
  for (int i = 0; i < n; ++i) FeSq(h, *h);
}

/// Shared ladder for the two exponentiations: returns z^(2^250 - 1) in
/// `t250` and z^11 in `t11` (enough to finish either exponent).
void FePowLadder(Fe* t250, Fe* t11, const Fe& z) {
  Fe z2, z9, z11, z31, t5, t10, t20, t40, t50, t100, t200, tmp;
  FeSq(&z2, z);               // z^2
  FeSqN(&tmp, z2, 2);         // z^8
  FeMul(&z9, tmp, z);         // z^9
  FeMul(&z11, z9, z2);        // z^11
  FeSq(&tmp, z11);            // z^22
  FeMul(&z31, tmp, z9);       // z^31 = z^(2^5 - 1)
  t5 = z31;
  FeSqN(&tmp, t5, 5);
  FeMul(&t10, tmp, t5);       // z^(2^10 - 1)
  FeSqN(&tmp, t10, 10);
  FeMul(&t20, tmp, t10);      // z^(2^20 - 1)
  FeSqN(&tmp, t20, 20);
  FeMul(&t40, tmp, t20);      // z^(2^40 - 1)
  FeSqN(&tmp, t40, 10);
  FeMul(&t50, tmp, t10);      // z^(2^50 - 1)
  FeSqN(&tmp, t50, 50);
  FeMul(&t100, tmp, t50);     // z^(2^100 - 1)
  FeSqN(&tmp, t100, 100);
  FeMul(&t200, tmp, t100);    // z^(2^200 - 1)
  FeSqN(&tmp, t200, 50);
  FeMul(t250, tmp, t50);      // z^(2^250 - 1)
  *t11 = z11;
}

/// h = z^(p-2) = z^(2^255 - 21): the inverse for z != 0.
void FeInvert(Fe* h, const Fe& z) {
  Fe t250, z11, tmp;
  FePowLadder(&t250, &z11, z);
  FeSqN(&tmp, t250, 5);  // z^(2^255 - 2^5)
  FeMul(h, tmp, z11);    // z^(2^255 - 21)
}

/// h = z^((p-5)/8) = z^(2^252 - 3): the square-root exponent.
void FePow22523(Fe* h, const Fe& z) {
  Fe t250, z11, tmp;
  FePowLadder(&t250, &z11, z);
  FeSqN(&tmp, t250, 2);  // z^(2^252 - 4)
  FeMul(h, tmp, z);      // z^(2^252 - 3)
}

bool FeIsZero(const Fe& f) {
  uint8_t s[32];
  FeToBytes(s, f);
  uint8_t acc = 0;
  for (uint8_t b : s) acc |= b;
  return acc == 0;
}

bool FeIsNegative(const Fe& f) {
  uint8_t s[32];
  FeToBytes(s, f);
  return (s[0] & 1) != 0;
}

bool FeEqual(const Fe& f, const Fe& g) {
  Fe diff;
  FeSub(&diff, f, g);
  return FeIsZero(diff);
}

// ------------------------------------------------------------- Constants
// Verified little-endian encodings (cross-checked against an independent
// reference; the RFC 8032 vector tests would fail on any bit error here).
constexpr uint8_t kDBytes[32] = {
    0xa3, 0x78, 0x59, 0x13, 0xca, 0x4d, 0xeb, 0x75, 0xab, 0xd8, 0x41,
    0x41, 0x4d, 0x0a, 0x70, 0x00, 0x98, 0xe8, 0x79, 0x77, 0x79, 0x40,
    0xc7, 0x8c, 0x73, 0xfe, 0x6f, 0x2b, 0xee, 0x6c, 0x03, 0x52};
constexpr uint8_t kSqrtM1Bytes[32] = {
    0xb0, 0xa0, 0x0e, 0x4a, 0x27, 0x1b, 0xee, 0xc4, 0x78, 0xe4, 0x2f,
    0xad, 0x06, 0x18, 0x43, 0x2f, 0xa7, 0xd7, 0xfb, 0x3d, 0x99, 0x00,
    0x4d, 0x2b, 0x0b, 0xdf, 0xc1, 0x4f, 0x80, 0x24, 0x83, 0x2b};
/// Base point encoding: y = 4/5, x positive.
constexpr uint8_t kBaseBytes[32] = {
    0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
    0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
    0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66};
/// Group order L = 2^252 + 27742317777372353535851937790883648493,
/// little-endian bytes (for the TweetNaCl-style scalar reduction).
constexpr u64 kL[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                        0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                        0,    0,    0,    0,    0,    0,    0,    0,
                        0,    0,    0,    0,    0,    0,    0,    0x10};

// -------------------------------------------------------------- Points
// Extended twisted-Edwards coordinates (ref10 layout): P3 is (X:Y:Z:T)
// with T = XY/Z; P1P1 the intermediate "completed" form; Cached the
// precomputed addend (Y+X : Y-X : Z : 2dT).

struct P3 {
  Fe x, y, z, t;
};
struct P1P1 {
  Fe x, y, z, t;
};
struct Cached {
  Fe y_plus_x, y_minus_x, z, t2d;
};

/// Lazily-initialized derived constants (thread-safe since C++11; pure
/// computation, so rule D1's determinism contract holds).
struct Curve {
  Fe d, d2, sqrt_m1;
  P3 base;
};

void P3Identity(P3* h) {
  h->x = kFeZero;
  h->y = kFeOne;
  h->z = kFeOne;
  h->t = kFeZero;
}

void P3ToCached(Cached* r, const P3& p, const Curve& c) {
  FeAdd(&r->y_plus_x, p.y, p.x);
  FeSub(&r->y_minus_x, p.y, p.x);
  r->z = p.z;
  FeMul(&r->t2d, p.t, c.d2);
}

void P1P1ToP3(P3* r, const P1P1& p) {
  FeMul(&r->x, p.x, p.t);
  FeMul(&r->y, p.y, p.z);
  FeMul(&r->z, p.z, p.t);
  FeMul(&r->t, p.x, p.y);
}

/// r = 2*p (doubling on the projective (X:Y:Z) part; T is not needed).
void P3Dbl(P1P1* r, const P3& p) {
  Fe xx, yy, zz2, xpy, xpy2;
  FeSq(&xx, p.x);
  FeSq(&yy, p.y);
  FeSq(&zz2, p.z);
  FeAdd(&zz2, zz2, zz2);
  FeAdd(&xpy, p.x, p.y);
  FeSq(&xpy2, xpy);
  FeAdd(&r->y, yy, xx);        // Y3 = YY + XX
  FeSub(&r->z, yy, xx);        // Z3 = YY - XX
  FeSub(&r->x, xpy2, r->y);    // X3 = (X+Y)^2 - YY - XX = 2XY
  FeSub(&r->t, zz2, r->z);     // T3 = 2ZZ - Z3
}

/// r = p + q.
void P3Add(P1P1* r, const P3& p, const Cached& q) {
  Fe a, b, cc, dd, t0;
  FeAdd(&t0, p.y, p.x);
  FeMul(&a, t0, q.y_plus_x);   // A = (Y1+X1)(Y2+X2)
  FeSub(&t0, p.y, p.x);
  FeMul(&b, t0, q.y_minus_x);  // B = (Y1-X1)(Y2-X2)
  FeMul(&cc, p.t, q.t2d);      // C = 2d T1 T2
  FeMul(&dd, p.z, q.z);
  FeAdd(&dd, dd, dd);          // D = 2 Z1 Z2
  FeSub(&r->x, a, b);
  FeAdd(&r->y, a, b);
  FeAdd(&r->z, dd, cc);
  FeSub(&r->t, dd, cc);
}

void P3Neg(P3* r, const P3& p) {
  FeNeg(&r->x, p.x);
  r->y = p.y;
  r->z = p.z;
  FeNeg(&r->t, p.t);
}

void P3Compress(uint8_t s[32], const P3& p) {
  Fe zinv, x, y;
  FeInvert(&zinv, p.z);
  FeMul(&x, p.x, zinv);
  FeMul(&y, p.y, zinv);
  FeToBytes(s, y);
  uint8_t xb[32];
  FeToBytes(xb, x);
  s[31] |= static_cast<uint8_t>((xb[0] & 1) << 7);
}

/// True when the 255-bit little-endian value (sign bit ignored) is a
/// canonical field element, i.e. < p = 2^255 - 19.
bool YIsCanonical(const uint8_t s[32]) {
  // y >= p requires bytes 1..30 all 0xff, byte 31 (sans sign) 0x7f, and
  // byte 0 >= 0xed.
  if ((s[31] & 0x7f) != 0x7f || s[0] < 0xed) return true;
  for (int i = 1; i < 31; ++i)
    if (s[i] != 0xff) return true;
  return false;
}

/// RFC 8032 §5.1.3 decompression with strict (canonical-y) parsing.
[[nodiscard]] bool P3Decompress(P3* h, const uint8_t s[32], const Curve& c) {
  if (!YIsCanonical(s)) return false;
  const bool sign = (s[31] & 0x80) != 0;
  Fe y;
  FeFromBytes(&y, s);
  Fe y2, u, v;
  FeSq(&y2, y);
  FeSub(&u, y2, kFeOne);       // u = y^2 - 1
  FeMul(&v, y2, c.d);
  FeAdd(&v, v, kFeOne);        // v = d y^2 + 1

  // x = u v^3 (u v^7)^((p-5)/8); then fix up by sqrt(-1) or fail.
  Fe v2, v3, v7, uv7, pow, x;
  FeSq(&v2, v);
  FeMul(&v3, v2, v);
  FeSq(&v7, v3);
  FeMul(&v7, v7, v);
  FeMul(&uv7, u, v7);
  FePow22523(&pow, uv7);
  FeMul(&x, u, v3);
  FeMul(&x, x, pow);

  Fe vx2, neg_u;
  FeSq(&vx2, x);
  FeMul(&vx2, vx2, v);
  FeNeg(&neg_u, u);
  if (!FeEqual(vx2, u)) {
    if (!FeEqual(vx2, neg_u)) return false;  // u/v is not a square.
    FeMul(&x, x, c.sqrt_m1);
  }
  if (FeIsZero(x) && sign) return false;  // -0 is not a valid encoding.
  if (FeIsNegative(x) != sign) FeNeg(&x, x);

  h->x = x;
  h->y = y;
  h->z = kFeOne;
  FeMul(&h->t, x, y);
  return true;
}

const Curve& GetCurve() {
  static const Curve curve = [] {
    Curve c;
    FeFromBytes(&c.d, kDBytes);
    FeAdd(&c.d2, c.d, c.d);
    FeFromBytes(&c.sqrt_m1, kSqrtM1Bytes);
    bool ok = P3Decompress(&c.base, kBaseBytes, c);
    (void)ok;  // The encoding is a compile-time constant; always valid.
    return c;
  }();
  return curve;
}

// -------------------------------------------------------------- Scalars
// Arithmetic mod L on 32-byte little-endian scalars, TweetNaCl style:
// simple byte-limb schoolbook, negligible next to the point arithmetic.

void ScModL(uint8_t r[32], int64_t x[64]) {
  int64_t carry;
  for (int i = 63; i >= 32; --i) {
    carry = 0;
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += carry - 16 * x[i] * static_cast<int64_t>(kL[j - (i - 32)]);
      carry = (x[j] + 128) >> 8;
      x[j] -= carry << 8;
    }
    x[j] += carry;
    x[i] = 0;
  }
  carry = 0;
  for (int j = 0; j < 32; ++j) {
    x[j] += carry - (x[31] >> 4) * static_cast<int64_t>(kL[j]);
    carry = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) x[j] -= carry * static_cast<int64_t>(kL[j]);
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    r[i] = static_cast<uint8_t>(x[i] & 255);
  }
}

/// r = x mod L for a 64-byte (512-bit) little-endian input.
void ScReduce64(uint8_t r[32], const uint8_t x[64]) {
  int64_t t[64];
  for (int i = 0; i < 64; ++i) t[i] = x[i];
  ScModL(r, t);
}

/// r = (a * b + c) mod L, all 32-byte little-endian scalars.
void ScMulAdd(uint8_t r[32], const uint8_t a[32], const uint8_t b[32],
              const uint8_t c[32]) {
  int64_t t[64] = {0};
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 32; ++j)
      t[i + j] += static_cast<int64_t>(a[i]) * static_cast<int64_t>(b[j]);
  for (int i = 0; i < 32; ++i) t[i] += c[i];
  ScModL(r, t);
}

/// True iff the 32-byte little-endian scalar is < L (RFC 8032's MUST for
/// the s half of a signature; rejects the (s + L) malleability).
bool ScIsCanonical(const uint8_t s[32]) {
  for (int i = 31; i >= 0; --i) {
    if (s[i] < kL[i]) return true;
    if (s[i] > kL[i]) return false;
  }
  return false;  // s == L.
}

// ------------------------------------------------- Multi-scalar multiply
// Interleaved Straus with unsigned 4-bit windows: one shared chain of 252
// doublings regardless of how many (point, scalar) terms participate —
// the entire batch-verification speedup lives here.

struct MsmTerm {
  const P3* point;
  const uint8_t* scalar;  // 32 bytes, little-endian.
};

void MultiScalarMul(P3* out, const MsmTerm* terms, size_t n) {
  // Per-term table of 1P..15P in cached form.
  std::vector<std::array<Cached, 15>> tables(n);
  const Curve& c = GetCurve();
  for (size_t k = 0; k < n; ++k) {
    P3 multiple = *terms[k].point;
    P3ToCached(&tables[k][0], multiple, c);
    for (int m = 1; m < 15; ++m) {
      P1P1 sum;
      P3Add(&sum, multiple, tables[k][0]);
      P1P1ToP3(&multiple, sum);
      P3ToCached(&tables[k][m], multiple, c);
    }
  }
  P3 acc;
  P3Identity(&acc);
  for (int pos = 63; pos >= 0; --pos) {
    if (pos != 63) {
      for (int i = 0; i < 4; ++i) {
        P1P1 dbl;
        P3Dbl(&dbl, acc);
        P1P1ToP3(&acc, dbl);
      }
    }
    const int byte = pos / 2;
    const int shift = (pos & 1) ? 4 : 0;
    for (size_t k = 0; k < n; ++k) {
      const int digit = (terms[k].scalar[byte] >> shift) & 0xF;
      if (digit == 0) continue;
      P1P1 sum;
      P3Add(&sum, acc, tables[k][digit - 1]);
      P1P1ToP3(&acc, sum);
    }
  }
  *out = acc;
}

void ScalarMulBase(P3* out, const uint8_t scalar[32]) {
  MsmTerm term{&GetCurve().base, scalar};
  MultiScalarMul(out, &term, 1);
}

/// h = SHA512(R || A || M) mod L — the Schnorr challenge scalar.
void ChallengeScalar(uint8_t h[32], const uint8_t r_bytes[32],
                     const PublicKey& public_key, const uint8_t* data,
                     size_t len) {
  Sha512 hash;
  hash.Update(r_bytes, 32);
  hash.Update(public_key.data(), public_key.size());
  hash.Update(data, len);
  Digest512 digest = hash.Finish();
  ScReduce64(h, digest.data());
}

/// a (clamped) and the nonce prefix from the secret seed (RFC 8032 §5.1.5).
void ExpandSecret(uint8_t a[32], uint8_t prefix[32], const SecretKey& secret) {
  Digest512 h = Sha512::Hash(secret.data(), secret.size());
  std::memcpy(a, h.data(), 32);
  std::memcpy(prefix, h.data() + 32, 32);
  a[0] &= 248;
  a[31] &= 127;
  a[31] |= 64;
}

}  // namespace

PublicKey DerivePublicKey(const SecretKey& secret) {
  uint8_t a[32], prefix[32];
  ExpandSecret(a, prefix, secret);
  P3 point;
  ScalarMulBase(&point, a);
  PublicKey pk;
  P3Compress(pk.data(), point);
  return pk;
}

Sig Sign(const SecretKey& secret, const PublicKey& public_key,
         const uint8_t* data, size_t len) {
  uint8_t a[32], prefix[32];
  ExpandSecret(a, prefix, secret);

  // Deterministic nonce r = SHA512(prefix || M) mod L.
  Sha512 hash;
  hash.Update(prefix, 32);
  hash.Update(data, len);
  Digest512 nonce_hash = hash.Finish();
  uint8_t r[32];
  ScReduce64(r, nonce_hash.data());

  P3 r_point;
  ScalarMulBase(&r_point, r);
  Sig sig{};
  P3Compress(sig.data(), r_point);

  uint8_t h[32], s[32];
  ChallengeScalar(h, sig.data(), public_key, data, len);
  ScMulAdd(s, h, a, r);  // s = (r + h*a) mod L.
  std::memcpy(sig.data() + 32, s, 32);
  return sig;
}

bool Verify(const PublicKey& public_key, const uint8_t* data, size_t len,
            const Sig& sig) {
  if (!ScIsCanonical(sig.data() + 32)) return false;
  const Curve& curve = GetCurve();
  P3 a_point;
  if (!P3Decompress(&a_point, public_key.data(), curve)) return false;

  uint8_t h[32];
  ChallengeScalar(h, sig.data(), public_key, data, len);

  // R' = [s]B - [h]A must re-encode to the signature's R bytes.
  P3 neg_a;
  P3Neg(&neg_a, a_point);
  MsmTerm terms[2] = {{&curve.base, sig.data() + 32}, {&neg_a, h}};
  P3 r_check;
  MultiScalarMul(&r_check, terms, 2);
  uint8_t r_bytes[32];
  P3Compress(r_bytes, r_check);
  return std::memcmp(r_bytes, sig.data(), 32) == 0;
}

bool VerifyBatch(const std::vector<BatchItem>& items, const uint8_t* data,
                 size_t len) {
  const size_t n = items.size();
  if (n == 0) return true;
  if (n == 1) return Verify(*items[0].public_key, data, len, *items[0].sig);
  const Curve& curve = GetCurve();

  // Deterministic 128-bit combination coefficients z_i: a transcript hash
  // over the whole batch, then one hash per index. No signer controls the
  // full transcript, so engineering a cancellation across terms requires
  // predicting SHA-512 outputs.
  Sha512 transcript;
  transcript.Update("massbft-ed25519-batch-v1");
  transcript.Update(data, len);
  for (const BatchItem& item : items) {
    transcript.Update(item.public_key->data(), item.public_key->size());
    transcript.Update(item.sig->data(), item.sig->size());
  }
  const Digest512 seed = transcript.Finish();

  // Decompress everything up front; any malformed encoding fails the
  // batch (the scalar fallback then pinpoints it).
  std::vector<P3> neg_r(n), neg_a(n);
  for (size_t i = 0; i < n; ++i) {
    if (!ScIsCanonical(items[i].sig->data() + 32)) return false;
    P3 point;
    if (!P3Decompress(&point, items[i].sig->data(), curve)) return false;
    P3Neg(&neg_r[i], point);
    if (!P3Decompress(&point, items[i].public_key->data(), curve))
      return false;
    P3Neg(&neg_a[i], point);
  }

  uint8_t zero[32] = {0};
  uint8_t b_scalar[32] = {0};  // sum_i z_i s_i mod L.
  std::vector<std::array<uint8_t, 32>> z(n), zh(n);
  for (size_t i = 0; i < n; ++i) {
    Sha512 zi_hash;
    zi_hash.Update(seed.data(), seed.size());
    const uint8_t index = static_cast<uint8_t>(i);
    zi_hash.Update(&index, 1);
    const Digest512 zi = zi_hash.Finish();
    z[i].fill(0);
    std::memcpy(z[i].data(), zi.data(), 16);  // z_i in [0, 2^128).

    uint8_t h[32];
    ChallengeScalar(h, items[i].sig->data(), *items[i].public_key, data, len);
    ScMulAdd(zh[i].data(), z[i].data(), h, zero);          // z_i h_i
    ScMulAdd(b_scalar, z[i].data(), items[i].sig->data() + 32,
             b_scalar);                                    // += z_i s_i
  }

  // [sum z_i s_i]B - sum [z_i]R_i - sum [z_i h_i]A_i == identity.
  std::vector<MsmTerm> terms;
  terms.reserve(2 * n + 1);
  terms.push_back({&curve.base, b_scalar});
  for (size_t i = 0; i < n; ++i) {
    terms.push_back({&neg_r[i], z[i].data()});
    terms.push_back({&neg_a[i], zh[i].data()});
  }
  P3 result;
  MultiScalarMul(&result, terms.data(), terms.size());
  uint8_t encoded[32];
  P3Compress(encoded, result);
  constexpr uint8_t kIdentity[32] = {1};
  return std::memcmp(encoded, kIdentity, 32) == 0;
}

}  // namespace ed25519
}  // namespace massbft
