#include "crypto/hmac.h"

#include <cstring>

namespace massbft {

Digest HmacSha256(const Bytes& key, const uint8_t* data, size_t len) {
  constexpr size_t kBlock = 64;
  uint8_t k0[kBlock] = {0};
  if (key.size() > kBlock) {
    Digest kh = Sha256::Hash(key);
    std::memcpy(k0, kh.data(), kh.size());
  } else {
    std::memcpy(k0, key.data(), key.size());
  }

  uint8_t ipad[kBlock], opad[kBlock];
  for (size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k0[i] ^ 0x36;
    opad[i] = k0[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kBlock);
  inner.Update(data, len);
  Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kBlock);
  outer.Update(inner_digest.data(), inner_digest.size());
  return outer.Finish();
}

}  // namespace massbft
