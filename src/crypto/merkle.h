#ifndef MASSBFT_CRYPTO_MERKLE_H_
#define MASSBFT_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/codec.h"
#include "common/result.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace massbft {

/// Sibling-path Merkle proof for one leaf. `path[k]` is the sibling hash at
/// level k (level 0 = leaves); `index` locates the leaf so verifiers know the
/// left/right orientation at each level.
struct MerkleProof {
  uint32_t index = 0;
  uint32_t leaf_count = 0;
  std::vector<Digest> path;

  /// Wire codec: u32 index, u32 leaf_count, u16 path length, raw digests.
  void EncodeTo(BinaryWriter* w) const;
  [[nodiscard]] static Result<MerkleProof> DecodeFrom(BinaryReader* r);

  /// Encoded wire size in bytes (matches EncodeTo; charged against
  /// simulated links).
  size_t ByteSize() const { return 4 + 4 + 2 + path.size() * sizeof(Digest); }
};

/// Binary Merkle tree over a list of data blocks (erasure-coded chunks in
/// MassBFT's optimistic entry rebuild, Section IV-C of the paper).
///
/// Odd nodes at any level are promoted (Bitcoin-style duplication is avoided
/// to prevent the classic CVE-2012-2459 duplicate-leaf ambiguity: the last
/// node is carried up unchanged instead).
class MerkleTree {
 public:
  /// Builds a tree over the given blocks. Blocks are hashed with SHA-256;
  /// interior nodes hash the concatenation of their children.
  /// Requires at least one block.
  [[nodiscard]] static Result<MerkleTree> Build(
      const std::vector<Bytes>& blocks);

  /// Builds from precomputed leaf hashes (used by receivers that only have
  /// chunk digests).
  [[nodiscard]] static Result<MerkleTree> BuildFromLeaves(
      std::vector<Digest> leaves);

  const Digest& root() const { return levels_.back()[0]; }
  uint32_t leaf_count() const {
    return static_cast<uint32_t>(levels_[0].size());
  }
  const Digest& leaf(uint32_t i) const { return levels_[0][i]; }

  /// Generates the inclusion proof for leaf `index`.
  Result<MerkleProof> Prove(uint32_t index) const;

  /// Verifies that a block whose hash is `leaf_hash` is the
  /// `proof.index`-th leaf of the tree with root `root`.
  [[nodiscard]] static bool VerifyProof(const Digest& root,
                                        const Digest& leaf_hash,
                                        const MerkleProof& proof);

  /// Hash of two concatenated child digests (exposed for tests).
  static Digest HashPair(const Digest& left, const Digest& right);

  /// The leaf hash of a data block (domain-separated from interior nodes).
  /// Receivers hash incoming chunks with this before VerifyProof.
  static Digest HashLeaf(const Bytes& block);

 private:
  explicit MerkleTree(std::vector<std::vector<Digest>> levels)
      : levels_(std::move(levels)) {}

  // levels_[0] = leaf hashes ... levels_.back() = {root}.
  std::vector<std::vector<Digest>> levels_;
};

}  // namespace massbft

#endif  // MASSBFT_CRYPTO_MERKLE_H_
