#include "crypto/merkle.h"

namespace massbft {

void MerkleProof::EncodeTo(BinaryWriter* w) const {
  w->PutU32(index);
  w->PutU32(leaf_count);
  w->PutU16(static_cast<uint16_t>(path.size()));
  for (const Digest& d : path) w->PutRaw(d.data(), d.size());
}

Result<MerkleProof> MerkleProof::DecodeFrom(BinaryReader* r) {
  MerkleProof proof;
  MASSBFT_RETURN_IF_ERROR(r->GetU32(&proof.index));
  MASSBFT_RETURN_IF_ERROR(r->GetU32(&proof.leaf_count));
  uint16_t len = 0;
  MASSBFT_RETURN_IF_ERROR(r->GetU16(&len));
  // A binary tree over <= 2^32 leaves has depth <= 32; anything larger is
  // a malformed frame, rejected before allocating.
  if (len > 64) return Status::Corruption("implausible Merkle path length");
  proof.path.resize(len);
  for (uint16_t i = 0; i < len; ++i)
    MASSBFT_RETURN_IF_ERROR(r->GetRaw(proof.path[i].data(),
                                      proof.path[i].size()));
  return proof;
}

Digest MerkleTree::HashPair(const Digest& left, const Digest& right) {
  Sha256 h;
  // Domain separation tag for interior nodes.
  uint8_t tag = 0x01;
  h.Update(&tag, 1);
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finish();
}

Digest MerkleTree::HashLeaf(const Bytes& block) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.Update(&tag, 1);
  h.Update(block);
  return h.Finish();
}

Result<MerkleTree> MerkleTree::Build(const std::vector<Bytes>& blocks) {
  if (blocks.empty())
    return Status::InvalidArgument("MerkleTree requires at least one block");
  std::vector<Digest> leaves;
  leaves.reserve(blocks.size());
  for (const Bytes& b : blocks) leaves.push_back(HashLeaf(b));
  return BuildFromLeaves(std::move(leaves));
}

Result<MerkleTree> MerkleTree::BuildFromLeaves(std::vector<Digest> leaves) {
  if (leaves.empty())
    return Status::InvalidArgument("MerkleTree requires at least one leaf");
  std::vector<std::vector<Digest>> levels;
  levels.push_back(std::move(leaves));
  while (levels.back().size() > 1) {
    const std::vector<Digest>& below = levels.back();
    std::vector<Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (size_t i = 0; i + 1 < below.size(); i += 2)
      above.push_back(HashPair(below[i], below[i + 1]));
    if (below.size() % 2 == 1) above.push_back(below.back());  // Promote.
    levels.push_back(std::move(above));
  }
  return MerkleTree(std::move(levels));
}

Result<MerkleProof> MerkleTree::Prove(uint32_t index) const {
  if (index >= leaf_count())
    return Status::OutOfRange("leaf index out of range");
  MerkleProof proof;
  proof.index = index;
  proof.leaf_count = leaf_count();
  uint32_t i = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Digest>& nodes = levels_[level];
    uint32_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    // A promoted last node (odd level size, i == last) has no sibling and
    // contributes nothing at this level.
    if (sibling < nodes.size()) proof.path.push_back(nodes[sibling]);
    i /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const Digest& root, const Digest& leaf_hash,
                             const MerkleProof& proof) {
  if (proof.leaf_count == 0 || proof.index >= proof.leaf_count) return false;
  Digest acc = leaf_hash;
  uint32_t i = proof.index;
  uint32_t width = proof.leaf_count;
  size_t used = 0;
  while (width > 1) {
    bool promoted = (width % 2 == 1) && (i == width - 1);
    if (!promoted) {
      if (used >= proof.path.size()) return false;
      const Digest& sibling = proof.path[used++];
      acc = (i % 2 == 0) ? HashPair(acc, sibling) : HashPair(sibling, acc);
    }
    i /= 2;
    width = (width + 1) / 2;
  }
  return used == proof.path.size() && acc == root;
}

}  // namespace massbft
