#ifndef MASSBFT_CRYPTO_SHA256_H_
#define MASSBFT_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace massbft {

/// A SHA-256 digest. Used as entry/chunk identifiers, Merkle nodes and
/// certificate payloads throughout the protocol stack.
using Digest = std::array<uint8_t, 32>;

/// Renders a digest as lowercase hex.
std::string DigestToHex(const Digest& d);

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch — validated
/// against the NIST known-answer vectors in tests/crypto_test.cc.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Finalizes and returns the digest. The object must be Reset() before
  /// reuse.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(const uint8_t* data, size_t len);
  static Digest Hash(const Bytes& data) { return Hash(data.data(), data.size()); }
  static Digest Hash(std::string_view s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace massbft

#endif  // MASSBFT_CRYPTO_SHA256_H_
