#ifndef MASSBFT_CRYPTO_SHA256_H_
#define MASSBFT_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace massbft {

/// A SHA-256 digest. Used as entry/chunk identifiers, Merkle nodes and
/// certificate payloads throughout the protocol stack.
using Digest = std::array<uint8_t, 32>;

/// Renders a digest as lowercase hex.
std::string DigestToHex(const Digest& d);

namespace internal_sha256 {

/// Block-compression kernels, exposed so tests can cross-check the SHA-NI
/// path against the portable one on identical inputs. Each consumes
/// `n_blocks` 64-byte blocks starting at `data` and updates `state` in
/// place.
void ProcessBlocksScalar(uint32_t state[8], const uint8_t* data,
                         size_t n_blocks);
#if defined(__x86_64__) || defined(__i386__)
void ProcessBlocksShaNi(uint32_t state[8], const uint8_t* data,
                        size_t n_blocks);
#endif

}  // namespace internal_sha256

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch — validated
/// against the NIST known-answer vectors in tests/crypto_test.cc.
///
/// The compression function is selected once per process: x86 SHA-NI when
/// the CPU supports it, otherwise a portable scalar implementation with an
/// unrolled message schedule. MASSBFT_SIMD=scalar forces the portable path
/// (see common/cpu.h); the decision is logged at startup.
class Sha256 {
 public:
  enum class Impl { kScalar, kShaNi };

  Sha256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Finalizes and returns the digest. The object must be Reset() before
  /// reuse.
  [[nodiscard]] Digest Finish();

  /// One-shot convenience.
  [[nodiscard]] static Digest Hash(const uint8_t* data, size_t len);
  [[nodiscard]] static Digest Hash(const Bytes& data) {
    return Hash(data.data(), data.size());
  }
  [[nodiscard]] static Digest Hash(std::string_view s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Compression implementation the process dispatched to.
  static Impl ActiveImpl();
  static const char* ImplName(Impl impl);

  /// Test hooks: pin the compression function regardless of CPU features /
  /// MASSBFT_SIMD, and undo the pin. Not thread-safe; tests only.
  static void ForceImplForTest(Impl impl);
  static void RestoreImplDispatch();

 private:
  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

}  // namespace massbft

#endif  // MASSBFT_CRYPTO_SHA256_H_
