// coded_replication_demo: drive MassBFT's encoded bijective log
// replication primitives directly — no simulator — to show exactly what
// happens on the wire for the paper's Figure 5b case study (a 4-node group
// sending an entry to a 7-node group), including a Byzantine sender
// tampering chunks and the optimistic rebuild recovering.
//
// Run: ./build/examples/coded_replication_demo

#include <cstdio>

#include "crypto/signature.h"
#include "proto/entry.h"
#include "replication/encoder.h"
#include "replication/rebuilder.h"
#include "replication/transfer_plan.h"

using namespace massbft;

int main() {
  // --- 1. The transfer plan (paper Algorithm 1). -------------------------
  auto plan = TransferPlan::Create(/*n1=*/4, /*n2=*/7);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("transfer plan G1(4 nodes) -> G2(7 nodes):\n");
  std::printf("  n_total=%d (LCM)   data=%d  parity=%d\n", plan->n_total(),
              plan->n_data(), plan->n_parity());
  std::printf("  each G1 node sends %d chunks, each G2 node receives %d\n",
              plan->chunks_per_sender(), plan->chunks_per_receiver());
  std::printf("  WAN cost: %.2f entry copies (full bijective would send "
              "4)\n\n",
              plan->EntryCopiesSent());

  // --- 2. A locally-certified entry. -------------------------------------
  KeyRegistry registry;
  for (uint16_t i = 0; i < 4; ++i) registry.RegisterNode(NodeId{1, i});
  std::vector<Transaction> txns;
  for (uint64_t t = 0; t < 100; ++t)
    txns.push_back(Transaction{t, 0, 0, Bytes(201, static_cast<uint8_t>(t))});
  auto entry = std::make_shared<const Entry>(1, 0, txns);
  Certificate cert;
  cert.gid = 1;
  cert.digest = entry->digest();
  Bytes payload(cert.digest.begin(), cert.digest.end());
  for (uint16_t i = 0; i < 3; ++i)  // 2f+1 = 3 signatures for n = 4.
    cert.AddSignature(i, registry.Sign(NodeId{1, i}, payload));
  std::printf("entry e_{1,0}: %d txns, %zu bytes, certified by 3/4 nodes\n\n",
              entry->num_txns(), entry->ByteSize());

  // --- 3. Every sender encodes deterministically. -------------------------
  auto encoded = EncodeEntryForPlan(*entry, *plan);
  std::printf("encoded into %zu chunks of %zu bytes, Merkle root %.16s...\n",
              encoded->chunks.size(), encoded->chunks[0].data.size(),
              DigestToHex(encoded->merkle_root).c_str());

  // A colluding Byzantine sender (node 3) encodes a TAMPERED entry instead.
  Bytes tampered_bytes = entry->Encoded();
  tampered_bytes[42] ^= 0xFF;
  auto tampered = EncodeBytesForPlan(tampered_bytes, *plan);
  std::printf("Byzantine sender's tampered encoding root  %.16s...\n\n",
              DigestToHex(tampered->merkle_root).c_str());

  // --- 4. Receiver-side optimistic rebuild (paper Section IV-C). ---------
  EntryRebuilder::Config rebuild_config;
  rebuild_config.n_total = plan->n_total();
  rebuild_config.n_data = plan->n_data();
  rebuild_config.validate = [&](const Certificate& c, const Digest& digest) {
    return c.digest == digest && c.Verify(registry, 3);
  };
  EntryRebuilder rebuilder(std::move(rebuild_config));

  // Worst case (Section IV-B): the Byzantine sender's 7 chunks AND two
  // Byzantine receivers' 8 chunk slots all carry tampered data — 15
  // tampered chunk ids, exactly the plan's parity budget. They accumulate
  // in the tampered root's bucket; once it reaches the rebuild threshold,
  // the certificate check unmasks it and those ids are banned.
  int fed_fake = 0, fed_good = 0;
  std::vector<int> tampered_ids;
  for (const TransferTuple& tuple : plan->TuplesForSender(3))
    tampered_ids.push_back(tuple.chunk);
  for (int byz_receiver : {0, 1})
    for (const TransferTuple& tuple : plan->TuplesForReceiver(byz_receiver))
      tampered_ids.push_back(tuple.chunk);
  for (int id : tampered_ids) {
    auto result = rebuilder.AddChunk(
        tampered->merkle_root, static_cast<uint32_t>(id),
        tampered->chunks[id].data, tampered->chunks[id].proof, cert);
    ++fed_fake;
    if (result == EntryRebuilder::AddResult::kBucketFake)
      std::printf("tampered bucket filled after %d chunks -> rebuild failed "
                  "certificate check -> %d chunk ids BANNED\n",
                  fed_fake, rebuilder.banned_count());
  }

  // Honest senders' chunks arrive; banned ids are refused, the rest rebuild.
  for (int sender = 0; sender < 3 && !rebuilder.complete(); ++sender) {
    for (const TransferTuple& tuple : plan->TuplesForSender(sender)) {
      auto result = rebuilder.AddChunk(
          encoded->merkle_root, static_cast<uint32_t>(tuple.chunk),
          encoded->chunks[tuple.chunk].data,
          encoded->chunks[tuple.chunk].proof, cert);
      ++fed_good;
      if (result == EntryRebuilder::AddResult::kRebuilt) {
        std::printf("rebuilt from %d honest chunks (threshold %d); digest "
                    "matches certificate: %s\n",
                    fed_good, plan->n_data(),
                    rebuilder.entry()->digest() == entry->digest() ? "YES"
                                                                   : "NO");
        break;
      }
    }
  }

  if (!rebuilder.complete()) {
    std::fprintf(stderr, "rebuild failed\n");
    return 1;
  }
  std::printf("\nthe receiver re-shares %zu verified chunks over LAN for "
              "its peers\n",
              rebuilder.HeldChunks().size());
  return 0;
}
