// geo_ledger: a geo-distributed permissioned-ledger scenario on MassBFT.
//
// Three data centers (Hong Kong / London / Silicon Valley, the paper's
// worldwide cluster) run a shared SmallBank-style ledger. Each region's
// clients bank against their local group; MassBFT replicates and orders
// everything into one globally-consistent ledger. The example then
// demonstrates the consistency guarantee directly: it replays the executed
// log and shows that every region's replica agrees on the final database
// state, and injects a whole-region outage mid-run to show the takeover
// path keeping the other regions live.
//
// Run: ./build/examples/geo_ledger

#include <cstdio>

#include "core/config.h"
#include "core/experiment.h"

using namespace massbft;

int main() {
  std::printf("geo_ledger: SmallBank over MassBFT on the worldwide "
              "topology\n\n");

  ExperimentConfig config;
  config.topology = TopologyConfig::Worldwide(/*num_groups=*/3,
                                              /*nodes_per_group=*/4);
  config.protocol = ProtocolConfig::MassBft();
  config.protocol.pipeline_depth = 8;
  config.protocol.group_crash_timeout = 2 * kSecond;
  config.workload = WorkloadKind::kSmallBank;
  config.workload_scale = 0.01;  // 10k accounts for a quick demo.
  config.clients_per_group = 200;
  config.duration = 12 * kSecond;
  config.warmup = 2 * kSecond;
  config.execute_on_all_nodes = true;  // Every replica maintains the ledger.

  // Region outage: Silicon Valley (group 2) goes dark at t = 6 s.
  config.faults.crash_group = 2;
  config.faults.crash_at = 6 * kSecond;

  Experiment experiment(config);
  Status status = experiment.Setup();
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }
  ExperimentResult result = experiment.Run();

  const char* regions[] = {"Hong Kong", "London", "Silicon Valley"};
  std::printf("regional banking for 12 s; Silicon Valley crashes at 6 s\n");
  std::printf("committed transfers : %llu (%.1f ktps)\n",
              static_cast<unsigned long long>(result.committed_txns),
              result.throughput_tps / 1000.0);
  std::printf("mean commit latency : %.0f ms (worldwide RTTs 156-206 ms)\n",
              result.mean_latency_ms);

  std::printf("\nthroughput timeline:\n");
  for (const auto& point : result.timeline)
    std::printf("  t=%4.0fs  %6.0f tps   %s\n", point.time_s, point.tps,
                point.time_s >= 6.0 ? "<- Silicon Valley down" : "");

  // Consistency: all surviving replicas executed the same log prefix and
  // hold identical ledgers.
  int64_t agreement = experiment.CheckAgreement();
  std::printf("\nledger agreement across surviving replicas: %s "
              "(%lld entries in the common prefix)\n",
              agreement >= 0 ? "CONSISTENT" : "DIVERGED",
              static_cast<long long>(agreement));
  for (int g = 0; g < 2; ++g) {
    const GroupNode* replica =
        experiment.node(NodeId{static_cast<uint16_t>(g), 1});
    std::printf("  %-14s replica: %llu entries executed, %zu accounts "
                "touched\n",
                regions[g],
                static_cast<unsigned long long>(replica->executed_entries()),
                replica->store().materialized_size());
  }
  return agreement >= 0 ? 0 : 1;
}
