// Quickstart: run a 3-group MassBFT cluster on the simulated nationwide
// testbed under YCSB-A and print throughput/latency.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [protocol]
// where protocol is one of: massbft baseline geobft steward iss br ebr.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/config.h"
#include "core/experiment.h"

using namespace massbft;

namespace {

ProtocolConfig ParseProtocol(const std::string& name) {
  if (name == "baseline") return ProtocolConfig::Baseline();
  if (name == "geobft") return ProtocolConfig::GeoBft();
  if (name == "steward") return ProtocolConfig::Steward();
  if (name == "iss") return ProtocolConfig::Iss();
  if (name == "br") return ProtocolConfig::Br();
  if (name == "ebr") return ProtocolConfig::Ebr();
  return ProtocolConfig::MassBft();
}

}  // namespace

int main(int argc, char** argv) {
  std::string protocol = argc > 1 ? argv[1] : "massbft";

  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(/*num_groups=*/3,
                                               /*nodes_per_group=*/7);
  config.protocol = ParseProtocol(protocol);
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.1;  // 100k rows: quick demo.
  config.clients_per_group = 300;
  config.duration = 6 * kSecond;
  config.warmup = 2 * kSecond;

  std::printf("protocol=%s topology=3x7 nationwide workload=YCSB-A\n",
              ProtocolKindName(config.protocol.kind));

  Experiment experiment(config);
  Status status = experiment.Setup();
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }
  ExperimentResult result = experiment.Run();

  std::printf("throughput      : %8.1f ktps\n",
              result.throughput_tps / 1000.0);
  std::printf("latency mean    : %8.1f ms\n", result.mean_latency_ms);
  std::printf("latency p50/p99 : %8.1f / %.1f ms\n", result.p50_latency_ms,
              result.p99_latency_ms);
  std::printf("avg batch size  : %8.1f txns\n", result.avg_batch_size);
  std::printf("entries proposed: %8llu\n",
              static_cast<unsigned long long>(result.entries_proposed));
  std::printf("WAN bytes/entry : %8.0f\n", result.wan_bytes_per_entry);
  std::printf("sim events      : %8llu\n",
              static_cast<unsigned long long>(result.sim_events));

  int64_t agreement = experiment.CheckAgreement();
  std::printf("agreement check : %s (%lld entries)\n",
              agreement >= 0 ? "OK" : "DIVERGED",
              static_cast<long long>(agreement));
  return agreement >= 0 ? 0 : 1;
}
