// Real cluster: a 3-group x 4-node MassBFT cluster where every node runs
// on its own thread and all protocol messages cross an actual transport —
// the full wire codec either over an in-process fabric or over localhost
// TCP sockets. Drives YCSB-A closed-loop clients for a few seconds, drains,
// and verifies that every node executed the same entries and holds the
// same state fingerprint.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/real_cluster [--tcp] [--seconds N] [--clients N]
//
// Exits non-zero if fewer than 1000 transactions commit or any node's
// state diverges.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/config.h"
#include "runtime/cluster.h"

using namespace massbft;

int main(int argc, char** argv) {
  RealClusterConfig config;
  config.topology = TopologyConfig::Nationwide(/*num_groups=*/3,
                                               /*nodes_per_group=*/4);
  config.protocol = ProtocolConfig::MassBft();
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.05;
  config.clients_per_group = 32;
  config.duration_seconds = 3.0;
  config.seed = 42;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tcp") == 0) config.use_tcp = true;
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
      config.duration_seconds = std::stod(argv[++i]);
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
      config.clients_per_group = std::stoi(argv[++i]);
  }

  std::printf("transport: %s\n", config.use_tcp ? "tcp" : "in-process");

  RealCluster cluster(config);
  Status setup = cluster.Setup();
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }
  auto result = cluster.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", result->ToJson().c_str());
  std::printf("committed=%llu throughput=%.0f tps mean=%.1fms p99=%.1fms\n",
              static_cast<unsigned long long>(result->committed_txns),
              result->throughput_tps, result->mean_latency_ms,
              result->p99_latency_ms);

  if (result->committed_txns < 1000) {
    std::fprintf(stderr, "FAIL: committed %llu < 1000 transactions\n",
                 static_cast<unsigned long long>(result->committed_txns));
    return 1;
  }
  std::printf("PASS: all 12 nodes agree on execution log and state "
              "fingerprint\n");
  return 0;
}
