// Real cluster: a 3-group x 4-node MassBFT cluster where every node runs
// on its own thread and all protocol messages cross an actual transport —
// the full wire codec either over an in-process fabric or over localhost
// TCP sockets. Drives YCSB-A closed-loop clients for a few seconds, drains,
// and verifies that every node executed the same entries and holds the
// same state fingerprint.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/real_cluster [--tcp] [--seconds N] [--clients N]
//                                 [--faults PRESET] [--crypto=SCHEME]
//                                 [--trace=FILE] [--stats-port=P]
//                                 [--bench-out=FILE]
//
// Crypto (DESIGN.md §17):
//   --crypto=SCHEME   ed25519 (default): real RFC 8032 signatures with
//                     batched certificate verification; hmac: the
//                     simulated-PKI stand-in the figure benches use.
//
// Observability (DESIGN.md §14):
//   --trace=FILE      merged cluster-wide Chrome trace (one process per
//                     node, cross-node flow arrows; open in Perfetto)
//   --stats-port=P    localhost stats server for the whole run: /metrics
//                     (Prometheus text) and /health (JSON). P=0 picks an
//                     ephemeral port (printed at startup).
//   --bench-out=FILE  schema-versioned perf-baseline JSON of the run
//                     (compare against the checked-in BENCH_real_cluster
//                     .json trajectory)
//
// Fault presets (paper Section VI-E style failure experiments):
//   none           no faults (default)
//   crash          crash one follower per group mid-run; they stay down
//   crash-restart  crash one follower per group, restart them later
//   partition      cut group 0 off for ~1/4 of the run, then heal
//   chaos          duplicate + delay frames on every link
//
// Exits non-zero if the per-preset commit floor is missed or any
// continuously-correct node's state diverges.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/bench_baseline.h"
#include "core/config.h"
#include "runtime/cluster.h"

using namespace massbft;

namespace {

/// Applies a named fault preset; returns the commit floor for it (faulty
/// runs lose part of the issue window, so they get a lower bar).
long ApplyFaultPreset(const std::string& preset, RealClusterConfig& config) {
  const double d = config.duration_seconds;
  if (preset == "none") return 1000;
  if (preset == "crash") {
    config.crash_nodes_per_group = 1;
    config.crash_at_s = d * 0.3;
    return 500;
  }
  if (preset == "crash-restart") {
    config.crash_nodes_per_group = 1;
    config.crash_at_s = d * 0.25;
    config.restart_at_s = d * 0.6;
    return 500;
  }
  if (preset == "partition") {
    FaultSpec::Partition partition;
    partition.start_s = d * 0.3;
    partition.end_s = d * 0.55;
    partition.side_a = {0};
    config.net_faults.seed = config.seed;
    config.net_faults.partitions.push_back(partition);
    return 300;
  }
  if (preset == "chaos") {
    config.net_faults.seed = config.seed;
    config.net_faults.duplicate_rate = 0.05;
    config.net_faults.delay_rate = 0.05;
    config.net_faults.delay_min_ms = 1.0;
    config.net_faults.delay_max_ms = 10.0;
    return 500;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  RealClusterConfig config;
  config.topology = TopologyConfig::Nationwide(/*num_groups=*/3,
                                               /*nodes_per_group=*/4);
  config.protocol = ProtocolConfig::MassBft();
  config.workload = WorkloadKind::kYcsbA;
  config.workload_scale = 0.05;
  config.clients_per_group = 32;
  config.duration_seconds = 3.0;
  config.seed = 42;

  std::string preset = "none";
  std::string bench_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tcp") == 0) config.use_tcp = true;
    if (std::strncmp(argv[i], "--crypto=", 9) == 0) {
      const char* scheme = argv[i] + 9;
      if (std::strcmp(scheme, "ed25519") == 0) {
        config.crypto = CryptoScheme::kEd25519;
      } else if (std::strcmp(scheme, "hmac") == 0) {
        config.crypto = CryptoScheme::kSimulatedHmac;
      } else {
        std::fprintf(stderr,
                     "unknown --crypto scheme '%s' (want ed25519, hmac)\n",
                     scheme);
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc)
      config.duration_seconds = std::stod(argv[++i]);
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc)
      config.clients_per_group = std::stoi(argv[++i]);
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc)
      preset = argv[++i];
    if (std::strncmp(argv[i], "--trace=", 8) == 0)
      config.trace_path = argv[i] + 8;
    if (std::strncmp(argv[i], "--stats-port=", 13) == 0)
      config.stats_port = std::stoi(argv[i] + 13);
    if (std::strncmp(argv[i], "--bench-out=", 12) == 0)
      bench_out = argv[i] + 12;
  }

  // The preset's fault offsets scale with the (possibly overridden)
  // duration, so apply it after flag parsing.
  const long commit_floor = ApplyFaultPreset(preset, config);
  if (commit_floor < 0) {
    std::fprintf(stderr,
                 "unknown --faults preset '%s' (want none, crash, "
                 "crash-restart, partition, chaos)\n",
                 preset.c_str());
    return 2;
  }

  std::printf("transport: %s, faults: %s, crypto: %s\n",
              config.use_tcp ? "tcp" : "in-process", preset.c_str(),
              CryptoSchemeName(config.crypto));

  RealCluster cluster(config);
  Status setup = cluster.Setup();
  if (!setup.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", setup.ToString().c_str());
    return 1;
  }
  if (config.stats_port >= 0) {
    std::printf("stats: http://127.0.0.1:%u/metrics and /health\n",
                static_cast<unsigned>(cluster.stats_port()));
    std::fflush(stdout);
  }
  auto result = cluster.Run();
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (!config.trace_path.empty())
    std::printf("merged trace written to %s\n", config.trace_path.c_str());
  if (!bench_out.empty()) {
    Status written =
        WriteBenchBaselineFile(bench_out, "real_cluster", *result);
    if (!written.ok()) {
      std::fprintf(stderr, "baseline export failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("perf baseline written to %s\n", bench_out.c_str());
  }

  std::printf("%s\n", result->ToJson().c_str());
  std::printf("committed=%llu throughput=%.0f tps mean=%.1fms p99=%.1fms\n",
              static_cast<unsigned long long>(result->committed_txns),
              result->throughput_tps, result->mean_latency_ms,
              result->p99_latency_ms);
  std::printf("nodes_killed=%d faults_injected=%llu reconnects=%llu "
              "backpressure_drops=%llu send_errors=%llu decode_errors=%llu\n",
              result->nodes_killed,
              static_cast<unsigned long long>(result->faults_injected),
              static_cast<unsigned long long>(result->net_reconnects),
              static_cast<unsigned long long>(
                  result->net_dropped_backpressure),
              static_cast<unsigned long long>(result->net_send_errors),
              static_cast<unsigned long long>(result->net_decode_errors));

  if (result->committed_txns < static_cast<uint64_t>(commit_floor)) {
    std::fprintf(stderr, "FAIL: committed %llu < %ld transactions\n",
                 static_cast<unsigned long long>(result->committed_txns),
                 commit_floor);
    return 1;
  }
  std::printf("PASS: all continuously-correct nodes agree on execution log "
              "and state fingerprint\n");
  return 0;
}
