// protocol_shootout: compare all seven protocol variants head-to-head on
// the same simulated nationwide cluster and workload — the quickest way to
// see the paper's headline result (Figure 8) from the public API.
//
// Run: ./build/examples/protocol_shootout [ycsb-a|ycsb-b|smallbank|tpcc]

#include <cstdio>
#include <string>

#include "core/config.h"
#include "core/experiment.h"

using namespace massbft;

namespace {

WorkloadKind ParseWorkload(const std::string& name) {
  if (name == "ycsb-b") return WorkloadKind::kYcsbB;
  if (name == "smallbank") return WorkloadKind::kSmallBank;
  if (name == "tpcc") return WorkloadKind::kTpcc;
  return WorkloadKind::kYcsbA;
}

}  // namespace

int main(int argc, char** argv) {
  WorkloadKind workload =
      ParseWorkload(argc > 1 ? argv[1] : "ycsb-a");
  std::printf("protocol shootout on 3x7 nationwide, workload %s\n\n",
              WorkloadKindName(workload));
  std::printf("%-18s %10s %12s %12s %10s\n", "protocol", "ktps",
              "latency_ms", "p99_ms", "batch");

  const ProtocolKind kProtocols[] = {
      ProtocolKind::kMassBft, ProtocolKind::kEbr,     ProtocolKind::kBr,
      ProtocolKind::kGeoBft,  ProtocolKind::kBaseline, ProtocolKind::kIss,
      ProtocolKind::kSteward,
  };

  double best = 0, worst = 1e18;
  for (ProtocolKind kind : kProtocols) {
    ExperimentConfig config;
    config.topology = TopologyConfig::Nationwide(3, 7);
    config.protocol = ProtocolConfig::ForKind(kind);
    config.protocol.pipeline_depth = 8;
    config.workload = workload;
    config.workload_scale = 0.1;
    config.clients_per_group = 2000;
    config.duration = 5 * kSecond;
    config.warmup = 2 * kSecond;

    Experiment experiment(config);
    Status status = experiment.Setup();
    if (!status.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n", ProtocolKindName(kind),
                   status.ToString().c_str());
      return 1;
    }
    ExperimentResult result = experiment.Run();
    std::printf("%-18s %10.1f %12.1f %12.1f %10.0f\n",
                ProtocolKindName(kind), result.throughput_tps / 1000.0,
                result.mean_latency_ms, result.p99_latency_ms,
                result.avg_batch_size);
    best = std::max(best, result.throughput_tps);
    if (kind != ProtocolKind::kMassBft)
      worst = std::min(worst, result.throughput_tps);
  }
  std::printf("\nbest/worst throughput ratio: %.1fx (paper reports "
              "5.49x-29.96x across workloads)\n",
              worst > 0 ? best / worst : 0.0);
  return 0;
}
