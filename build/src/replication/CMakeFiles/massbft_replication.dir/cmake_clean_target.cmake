file(REMOVE_RECURSE
  "libmassbft_replication.a"
)
