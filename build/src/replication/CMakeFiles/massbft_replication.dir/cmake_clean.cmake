file(REMOVE_RECURSE
  "CMakeFiles/massbft_replication.dir/encoder.cc.o"
  "CMakeFiles/massbft_replication.dir/encoder.cc.o.d"
  "CMakeFiles/massbft_replication.dir/rebuilder.cc.o"
  "CMakeFiles/massbft_replication.dir/rebuilder.cc.o.d"
  "CMakeFiles/massbft_replication.dir/transfer_plan.cc.o"
  "CMakeFiles/massbft_replication.dir/transfer_plan.cc.o.d"
  "libmassbft_replication.a"
  "libmassbft_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
