# Empty compiler generated dependencies file for massbft_replication.
# This may be replaced when dependencies are built.
