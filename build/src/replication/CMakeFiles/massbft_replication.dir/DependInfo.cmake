
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/encoder.cc" "src/replication/CMakeFiles/massbft_replication.dir/encoder.cc.o" "gcc" "src/replication/CMakeFiles/massbft_replication.dir/encoder.cc.o.d"
  "/root/repo/src/replication/rebuilder.cc" "src/replication/CMakeFiles/massbft_replication.dir/rebuilder.cc.o" "gcc" "src/replication/CMakeFiles/massbft_replication.dir/rebuilder.cc.o.d"
  "/root/repo/src/replication/transfer_plan.cc" "src/replication/CMakeFiles/massbft_replication.dir/transfer_plan.cc.o" "gcc" "src/replication/CMakeFiles/massbft_replication.dir/transfer_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/massbft_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/massbft_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/massbft_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/massbft_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/massbft_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
