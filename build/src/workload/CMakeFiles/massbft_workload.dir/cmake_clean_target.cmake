file(REMOVE_RECURSE
  "libmassbft_workload.a"
)
