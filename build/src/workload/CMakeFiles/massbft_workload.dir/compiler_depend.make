# Empty compiler generated dependencies file for massbft_workload.
# This may be replaced when dependencies are built.
