file(REMOVE_RECURSE
  "CMakeFiles/massbft_workload.dir/smallbank.cc.o"
  "CMakeFiles/massbft_workload.dir/smallbank.cc.o.d"
  "CMakeFiles/massbft_workload.dir/tpcc.cc.o"
  "CMakeFiles/massbft_workload.dir/tpcc.cc.o.d"
  "CMakeFiles/massbft_workload.dir/workload.cc.o"
  "CMakeFiles/massbft_workload.dir/workload.cc.o.d"
  "CMakeFiles/massbft_workload.dir/ycsb.cc.o"
  "CMakeFiles/massbft_workload.dir/ycsb.cc.o.d"
  "libmassbft_workload.a"
  "libmassbft_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
