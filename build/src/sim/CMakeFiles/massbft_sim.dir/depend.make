# Empty dependencies file for massbft_sim.
# This may be replaced when dependencies are built.
