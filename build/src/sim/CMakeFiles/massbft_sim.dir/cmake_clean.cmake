file(REMOVE_RECURSE
  "CMakeFiles/massbft_sim.dir/metrics.cc.o"
  "CMakeFiles/massbft_sim.dir/metrics.cc.o.d"
  "CMakeFiles/massbft_sim.dir/network.cc.o"
  "CMakeFiles/massbft_sim.dir/network.cc.o.d"
  "CMakeFiles/massbft_sim.dir/simulator.cc.o"
  "CMakeFiles/massbft_sim.dir/simulator.cc.o.d"
  "CMakeFiles/massbft_sim.dir/topology.cc.o"
  "CMakeFiles/massbft_sim.dir/topology.cc.o.d"
  "libmassbft_sim.a"
  "libmassbft_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
