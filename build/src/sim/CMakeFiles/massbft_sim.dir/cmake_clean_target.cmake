file(REMOVE_RECURSE
  "libmassbft_sim.a"
)
