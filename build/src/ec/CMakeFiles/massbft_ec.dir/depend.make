# Empty dependencies file for massbft_ec.
# This may be replaced when dependencies are built.
