file(REMOVE_RECURSE
  "CMakeFiles/massbft_ec.dir/gf256.cc.o"
  "CMakeFiles/massbft_ec.dir/gf256.cc.o.d"
  "CMakeFiles/massbft_ec.dir/matrix.cc.o"
  "CMakeFiles/massbft_ec.dir/matrix.cc.o.d"
  "CMakeFiles/massbft_ec.dir/reed_solomon.cc.o"
  "CMakeFiles/massbft_ec.dir/reed_solomon.cc.o.d"
  "libmassbft_ec.a"
  "libmassbft_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
