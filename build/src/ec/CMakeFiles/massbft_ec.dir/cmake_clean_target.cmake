file(REMOVE_RECURSE
  "libmassbft_ec.a"
)
