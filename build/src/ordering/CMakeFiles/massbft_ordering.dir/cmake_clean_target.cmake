file(REMOVE_RECURSE
  "libmassbft_ordering.a"
)
