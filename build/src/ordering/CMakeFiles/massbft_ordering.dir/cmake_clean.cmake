file(REMOVE_RECURSE
  "CMakeFiles/massbft_ordering.dir/round_ordering.cc.o"
  "CMakeFiles/massbft_ordering.dir/round_ordering.cc.o.d"
  "CMakeFiles/massbft_ordering.dir/vts_ordering.cc.o"
  "CMakeFiles/massbft_ordering.dir/vts_ordering.cc.o.d"
  "libmassbft_ordering.a"
  "libmassbft_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
