# Empty dependencies file for massbft_ordering.
# This may be replaced when dependencies are built.
