file(REMOVE_RECURSE
  "libmassbft_crypto.a"
)
