# Empty compiler generated dependencies file for massbft_crypto.
# This may be replaced when dependencies are built.
