file(REMOVE_RECURSE
  "CMakeFiles/massbft_crypto.dir/hmac.cc.o"
  "CMakeFiles/massbft_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/massbft_crypto.dir/merkle.cc.o"
  "CMakeFiles/massbft_crypto.dir/merkle.cc.o.d"
  "CMakeFiles/massbft_crypto.dir/sha256.cc.o"
  "CMakeFiles/massbft_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/massbft_crypto.dir/signature.cc.o"
  "CMakeFiles/massbft_crypto.dir/signature.cc.o.d"
  "libmassbft_crypto.a"
  "libmassbft_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
