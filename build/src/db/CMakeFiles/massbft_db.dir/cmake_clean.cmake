file(REMOVE_RECURSE
  "CMakeFiles/massbft_db.dir/aria.cc.o"
  "CMakeFiles/massbft_db.dir/aria.cc.o.d"
  "CMakeFiles/massbft_db.dir/kv_store.cc.o"
  "CMakeFiles/massbft_db.dir/kv_store.cc.o.d"
  "libmassbft_db.a"
  "libmassbft_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
