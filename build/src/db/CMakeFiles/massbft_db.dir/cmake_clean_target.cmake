file(REMOVE_RECURSE
  "libmassbft_db.a"
)
