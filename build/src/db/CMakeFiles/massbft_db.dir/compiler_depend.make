# Empty compiler generated dependencies file for massbft_db.
# This may be replaced when dependencies are built.
