file(REMOVE_RECURSE
  "libmassbft_consensus.a"
)
