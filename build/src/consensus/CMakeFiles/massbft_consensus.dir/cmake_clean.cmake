file(REMOVE_RECURSE
  "CMakeFiles/massbft_consensus.dir/pbft/certifier.cc.o"
  "CMakeFiles/massbft_consensus.dir/pbft/certifier.cc.o.d"
  "CMakeFiles/massbft_consensus.dir/pbft/pbft.cc.o"
  "CMakeFiles/massbft_consensus.dir/pbft/pbft.cc.o.d"
  "CMakeFiles/massbft_consensus.dir/raft/raft.cc.o"
  "CMakeFiles/massbft_consensus.dir/raft/raft.cc.o.d"
  "libmassbft_consensus.a"
  "libmassbft_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
