# Empty dependencies file for massbft_consensus.
# This may be replaced when dependencies are built.
