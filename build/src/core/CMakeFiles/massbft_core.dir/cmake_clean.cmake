file(REMOVE_RECURSE
  "CMakeFiles/massbft_core.dir/config.cc.o"
  "CMakeFiles/massbft_core.dir/config.cc.o.d"
  "CMakeFiles/massbft_core.dir/experiment.cc.o"
  "CMakeFiles/massbft_core.dir/experiment.cc.o.d"
  "CMakeFiles/massbft_core.dir/group_node.cc.o"
  "CMakeFiles/massbft_core.dir/group_node.cc.o.d"
  "libmassbft_core.a"
  "libmassbft_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
