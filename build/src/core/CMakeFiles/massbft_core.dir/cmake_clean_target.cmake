file(REMOVE_RECURSE
  "libmassbft_core.a"
)
