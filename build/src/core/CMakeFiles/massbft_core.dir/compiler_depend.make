# Empty compiler generated dependencies file for massbft_core.
# This may be replaced when dependencies are built.
