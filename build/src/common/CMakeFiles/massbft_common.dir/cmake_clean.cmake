file(REMOVE_RECURSE
  "CMakeFiles/massbft_common.dir/bytes.cc.o"
  "CMakeFiles/massbft_common.dir/bytes.cc.o.d"
  "CMakeFiles/massbft_common.dir/logging.cc.o"
  "CMakeFiles/massbft_common.dir/logging.cc.o.d"
  "CMakeFiles/massbft_common.dir/status.cc.o"
  "CMakeFiles/massbft_common.dir/status.cc.o.d"
  "CMakeFiles/massbft_common.dir/zipf.cc.o"
  "CMakeFiles/massbft_common.dir/zipf.cc.o.d"
  "libmassbft_common.a"
  "libmassbft_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
