file(REMOVE_RECURSE
  "libmassbft_common.a"
)
