# Empty dependencies file for massbft_common.
# This may be replaced when dependencies are built.
