file(REMOVE_RECURSE
  "libmassbft_proto.a"
)
