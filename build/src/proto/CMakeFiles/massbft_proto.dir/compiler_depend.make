# Empty compiler generated dependencies file for massbft_proto.
# This may be replaced when dependencies are built.
