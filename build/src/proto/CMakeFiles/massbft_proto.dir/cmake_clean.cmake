file(REMOVE_RECURSE
  "CMakeFiles/massbft_proto.dir/entry.cc.o"
  "CMakeFiles/massbft_proto.dir/entry.cc.o.d"
  "libmassbft_proto.a"
  "libmassbft_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
