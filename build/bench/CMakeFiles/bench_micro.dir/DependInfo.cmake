
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/massbft_core.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/massbft_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/massbft_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/massbft_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/massbft_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/massbft_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/massbft_db.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/massbft_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/massbft_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/massbft_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/massbft_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
