file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_worldwide.dir/bench_fig9_worldwide.cc.o"
  "CMakeFiles/bench_fig9_worldwide.dir/bench_fig9_worldwide.cc.o.d"
  "bench_fig9_worldwide"
  "bench_fig9_worldwide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_worldwide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
