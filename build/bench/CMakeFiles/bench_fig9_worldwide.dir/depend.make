# Empty dependencies file for bench_fig9_worldwide.
# This may be replaced when dependencies are built.
