file(REMOVE_RECURSE
  "CMakeFiles/massbft_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/massbft_bench_util.dir/bench_util.cc.o.d"
  "libmassbft_bench_util.a"
  "libmassbft_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/massbft_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
