# Empty compiler generated dependencies file for massbft_bench_util.
# This may be replaced when dependencies are built.
