file(REMOVE_RECURSE
  "libmassbft_bench_util.a"
)
