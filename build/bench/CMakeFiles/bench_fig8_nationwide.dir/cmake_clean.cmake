file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_nationwide.dir/bench_fig8_nationwide.cc.o"
  "CMakeFiles/bench_fig8_nationwide.dir/bench_fig8_nationwide.cc.o.d"
  "bench_fig8_nationwide"
  "bench_fig8_nationwide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_nationwide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
