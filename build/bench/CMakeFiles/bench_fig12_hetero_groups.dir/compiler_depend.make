# Empty compiler generated dependencies file for bench_fig12_hetero_groups.
# This may be replaced when dependencies are built.
