file(REMOVE_RECURSE
  "CMakeFiles/coded_replication_demo.dir/coded_replication_demo.cpp.o"
  "CMakeFiles/coded_replication_demo.dir/coded_replication_demo.cpp.o.d"
  "coded_replication_demo"
  "coded_replication_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coded_replication_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
