# Empty compiler generated dependencies file for coded_replication_demo.
# This may be replaced when dependencies are built.
