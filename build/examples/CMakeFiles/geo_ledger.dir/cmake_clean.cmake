file(REMOVE_RECURSE
  "CMakeFiles/geo_ledger.dir/geo_ledger.cpp.o"
  "CMakeFiles/geo_ledger.dir/geo_ledger.cpp.o.d"
  "geo_ledger"
  "geo_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
