# Empty compiler generated dependencies file for geo_ledger.
# This may be replaced when dependencies are built.
