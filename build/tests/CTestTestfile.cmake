# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/merkle_test[1]_include.cmake")
include("/root/repo/build/tests/ec_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/ordering_test[1]_include.cmake")
include("/root/repo/build/tests/pbft_test[1]_include.cmake")
include("/root/repo/build/tests/raft_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
