// Reproduces paper Figure 14: MassBFT under mixed node bandwidths. All
// nodes start at 40 Mbps; 0..7 nodes per group are slowed to 20 Mbps.
//
// Expected shape: throughput holds while slow nodes <= 4 (the transfer
// plan needs only n_data = 3 of 7 chunk paths, so rebuilds ride the fast
// senders), then drops once 5+ nodes are slow (paper: -36.9%) because
// fewer than n_data fast chunk paths remain and replication is gated by
// the slow uplinks.

#include <cstdio>

#include "bench/bench_util.h"

using namespace massbft;
using namespace massbft::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  std::printf("=== Fig 14: mixed 40/20 Mbps nodes (3x7, YCSB-A) ===\n");

  TablePrinter table({"slow_nodes", "ktps", "latency_ms", "drop_pct"},
                     opts.csv);
  double reference = 0;
  for (int slow = 0; slow <= 7; ++slow) {
    ExperimentConfig config;
    config.topology = TopologyConfig::Nationwide(3, 7);
    config.topology.wan_bps = 40e6;
    for (int g = 0; g < 3; ++g)
      for (int i = 0; i < slow; ++i)
        config.topology.wan_overrides.push_back(
            {NodeId{static_cast<uint16_t>(g), static_cast<uint16_t>(6 - i)},
             20e6});
    config.protocol = ProtocolConfig::MassBft();
    config.protocol.pipeline_depth = 8;
    config.workload = WorkloadKind::kYcsbA;
    config.duration = RunDuration(opts);
    config.warmup = WarmupDuration(opts);
    OperatingPoint point = FindKnee(config, DefaultLadder(opts));
    if (slow == 0) reference = point.throughput_tps;
    table.Row({std::to_string(slow),
               TablePrinter::Num(point.throughput_tps / 1000.0),
               TablePrinter::Num(point.latency_ms),
               TablePrinter::Num(
                   100.0 * (1.0 - point.throughput_tps / reference))});
  }
  return 0;
}
