// Signature-subsystem microbenchmark: the per-operation cost of the two
// crypto backends behind the SignatureScheme seam, and the payoff of
// batch verification on the certificate hot path. Four measurements per
// scheme where they apply:
//
//   * sign — signatures/sec over a 32-byte digest (the consensus shape).
//   * verify (scalar) — one-at-a-time verification, the fallback path.
//   * verify (batch) — signatures/sec through VerifyBatch at a
//     quorum-sized batch; for ed25519 this is the shared-doubling
//     multi-scalar multiplication that amortizes the curve work.
//   * certificate check — full Certificate::Verify round trips/sec
//     through a KeyRegistry (decode-free: the cert is already in memory).
//
// The headline acceptance number is ed25519 batch vs scalar verify: the
// batch figure must be measurably higher per signature. --baseline=FILE
// writes the schema-versioned perf-trajectory document
// (core/bench_baseline.h) that BENCH_crypto.json tracks;
// tools/obs/compare_bench.py diffs two such documents (metric names end
// in per_sec, so higher is better).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/bench_baseline.h"
#include "crypto/signature.h"
#include "obs/json_writer.h"
#include "proto/entry.h"

namespace massbft {
namespace {

struct CryptoBenchOptions {
  uint64_t sign_iters = 1000;
  uint64_t verify_iters = 1000;
  uint64_t batch_size = 7;   // One paper-sized group: n = 3f+1 with f = 2.
  uint64_t batch_iters = 300;
  uint64_t cert_iters = 300;
  std::string baseline_file;
};

CryptoBenchOptions ParseArgs(int argc, char** argv) {
  CryptoBenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--sign-iters=")) {
      opts.sign_iters = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--verify-iters=")) {
      opts.verify_iters = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--batch-size=")) {
      opts.batch_size = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--batch-iters=")) {
      opts.batch_iters = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--cert-iters=")) {
      opts.cert_iters = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--baseline=")) {
      opts.baseline_file = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_crypto [--sign-iters=N] [--verify-iters=N] "
                   "[--batch-size=N] [--batch-iters=N] [--cert-iters=N] "
                   "[--baseline=FILE]\n");
      std::exit(2);
    }
  }
  return opts;
}

struct OpResult {
  uint64_t ops = 0;      // Per-signature operations in the timed window.
  double wall_ms = 0;
  double per_sec = 0;
};

/// Times `iters` calls of `op`, where each call covers `ops_per_iter`
/// per-signature operations (1 for scalar paths, the batch width for
/// batched ones). One untimed warmup call primes caches and tables.
OpResult TimeOp(uint64_t iters, uint64_t ops_per_iter,
                const std::function<void()>& op) {
  op();  // Warmup.
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) op();
  auto end = std::chrono::steady_clock::now();
  OpResult r;
  r.ops = iters * ops_per_iter;
  r.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  r.per_sec = 1000.0 * static_cast<double>(r.ops) / r.wall_ms;
  return r;
}

struct SchemeResults {
  OpResult sign;
  OpResult verify_scalar;
  OpResult verify_batch;
  OpResult cert_check;  // ops = certificates, not signatures.
};

/// Runs the four measurements against one registry/backend. The digest is
/// the 32-byte consensus shape; every signer signs the same digest, which
/// is exactly the certificate situation VerifyBatch exists for.
SchemeResults RunScheme(CryptoScheme scheme, const CryptoBenchOptions& opts) {
  KeyRegistry registry(scheme);
  const uint64_t n = opts.batch_size;
  std::vector<NodeId> nodes;
  for (uint64_t i = 0; i < n; ++i) {
    NodeId node{1, static_cast<uint16_t>(i)};
    registry.RegisterNode(node);
    nodes.push_back(node);
  }
  Bytes digest_bytes = ToBytes("bench digest: 32 bytes of entry.");
  Digest digest{};
  std::memcpy(digest.data(), digest_bytes.data(),
              std::min(digest.size(), digest_bytes.size()));

  std::vector<Signature> sigs;
  for (NodeId node : nodes) sigs.push_back(registry.Sign(node, digest_bytes));
  std::vector<const Signature*> sig_ptrs;
  for (const Signature& s : sigs) sig_ptrs.push_back(&s);

  Certificate cert;
  cert.gid = 1;
  cert.digest = digest;
  for (uint64_t i = 0; i < n; ++i)
    cert.AddSignature(static_cast<uint16_t>(i), sigs[i]);

  SchemeResults r;
  volatile bool sink = false;  // Keeps verify results observable.
  r.sign = TimeOp(opts.sign_iters, 1, [&] {
    Signature s = registry.Sign(nodes[0], digest_bytes);
    sink = sink != (s[0] == 0);
  });
  r.verify_scalar = TimeOp(opts.verify_iters, 1, [&] {
    sink = registry.Verify(nodes[0], digest_bytes, sigs[0]);
  });
  r.verify_batch = TimeOp(opts.batch_iters, n, [&] {
    sink = registry.VerifyBatch(nodes, digest_bytes.data(),
                                digest_bytes.size(), sig_ptrs);
  });
  r.cert_check = TimeOp(opts.cert_iters, 1, [&] {
    sink = cert.Verify(registry, static_cast<int>(n));
  });
  return r;
}

void Report(const char* scheme, const SchemeResults& r) {
  std::printf(
      "%-10s %9.0f sign/s  %9.0f verify/s  %9.0f batch-verify/s  "
      "%9.0f cert-checks/s\n",
      scheme, r.sign.per_sec, r.verify_scalar.per_sec, r.verify_batch.per_sec,
      r.cert_check.per_sec);
}

void WriteOpJson(obs::JsonWriter& w, const OpResult& r) {
  w.BeginObject();
  w.Member("ops", r.ops);
  w.Member("wall_ms", r.wall_ms);
  w.Member("per_sec", r.per_sec);
  w.EndObject();
}

void WriteSchemeJson(obs::JsonWriter& w, const SchemeResults& r) {
  w.BeginObject();
  w.Member("sign_per_sec", r.sign.per_sec);
  w.Member("verify_scalar_per_sec", r.verify_scalar.per_sec);
  w.Member("verify_batch_per_sec", r.verify_batch.per_sec);
  w.Member("cert_checks_per_sec", r.cert_check.per_sec);
  w.Key("sign");
  WriteOpJson(w, r.sign);
  w.Key("verify_scalar");
  WriteOpJson(w, r.verify_scalar);
  w.Key("verify_batch");
  WriteOpJson(w, r.verify_batch);
  w.Key("cert_check");
  WriteOpJson(w, r.cert_check);
  w.EndObject();
}

/// Renders the result object of the baseline document: the mandatory
/// ExperimentResult surface (check_bench_schema.py) with ed25519 batch
/// verification as the headline throughput, plus both schemes in full.
std::string ResultJson(uint64_t batch_size, const SchemeResults& ed,
                       const SchemeResults& hmac) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Member("mode", std::string("crypto"));
  w.Member("throughput_tps", ed.verify_batch.per_sec);
  w.Member("mean_latency_ms", 0.0);
  w.Member("p50_latency_ms", 0.0);
  w.Member("p99_latency_ms", 0.0);
  w.Member("committed_txns", ed.verify_batch.ops);
  w.Member("aborted_txns", 0.0);
  w.Member("total_wan_bytes", 0.0);
  w.Member("total_lan_bytes", 0.0);
  w.Member("wan_bytes_per_entry", 0.0);
  w.Member("wall_ms", ed.verify_batch.wall_ms);
  w.Key("phases");
  w.BeginObject();
  w.EndObject();
  w.Key("timeline");
  w.BeginArray();
  w.EndArray();
  w.Member("batch_size", batch_size);
  w.Key("ed25519");
  WriteSchemeJson(w, ed);
  w.Key("hmac_sim");
  WriteSchemeJson(w, hmac);
  w.EndObject();
  return out.str();
}

int Run(const CryptoBenchOptions& opts) {
  SchemeResults ed = RunScheme(CryptoScheme::kEd25519, opts);
  Report("ed25519", ed);
  SchemeResults hmac = RunScheme(CryptoScheme::kSimulatedHmac, opts);
  Report("hmac-sim", hmac);

  double speedup = ed.verify_batch.per_sec / ed.verify_scalar.per_sec;
  std::printf("ed25519 batch speedup over scalar verify: %.2fx (batch=%llu)\n",
              speedup, static_cast<unsigned long long>(opts.batch_size));

  if (!opts.baseline_file.empty()) {
    Status s = WriteBenchBaselineFileRaw(
        opts.baseline_file, "crypto", ResultJson(opts.batch_size, ed, hmac));
    if (!s.ok()) {
      std::fprintf(stderr, "bench_crypto: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("baseline written: %s\n", opts.baseline_file.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace massbft

int main(int argc, char** argv) {
  return massbft::Run(massbft::ParseArgs(argc, argv));
}
