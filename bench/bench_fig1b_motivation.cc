// Reproduces paper Figure 1b (motivation): GeoBFT-style one-way leader
// replication collapses as groups grow. 12-57 nodes across 3 data centers
// (4-19 per group), 20 Mbps WAN per node, YCSB-A.
//
// Expected shape: throughput FALLS as nodes per group rise, because the
// group leader must ship f+1 full entry copies to every remote group and
// f grows with the group size — the leader's uplink is the bottleneck.

#include <cstdio>

#include "bench/bench_util.h"

using namespace massbft;
using namespace massbft::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  std::printf("=== Fig 1b: GeoBFT throughput vs deployment size ===\n");

  TablePrinter table({"total_nodes", "nodes_per_group", "f", "ktps",
                      "latency_ms"},
                     opts.csv);
  for (int nodes : {4, 7, 10, 13, 16, 19}) {
    ExperimentConfig config;
    config.topology = TopologyConfig::Nationwide(3, nodes);
    config.protocol = ProtocolConfig::GeoBft();
    config.protocol.pipeline_depth = 8;
    config.workload = WorkloadKind::kYcsbA;
    config.duration = RunDuration(opts);
    config.warmup = WarmupDuration(opts);
    OperatingPoint point = FindKnee(config, DefaultLadder(opts));
    table.Row({std::to_string(3 * nodes), std::to_string(nodes),
               std::to_string((nodes - 1) / 3),
               TablePrinter::Num(point.throughput_tps / 1000.0),
               TablePrinter::Num(point.latency_ms)});
  }
  return 0;
}
