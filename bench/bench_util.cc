#include "bench/bench_util.h"

#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace massbft {
namespace bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) opts.csv = true;
    if (std::strcmp(argv[i], "--fast") == 0) opts.fast = true;
    if (std::strcmp(argv[i], "--full") == 0) opts.fast = false;
  }
  return opts;
}

SimTime RunDuration(const BenchOptions& opts) {
  return opts.fast ? 3 * kSecond : 6 * kSecond;
}
SimTime WarmupDuration(const BenchOptions& opts) {
  return opts.fast ? 1 * kSecond : 2 * kSecond;
}

ExperimentResult RunOnce(ExperimentConfig config) {
  Experiment experiment(std::move(config));
  Status status = experiment.Setup();
  MASSBFT_CHECK(status.ok());
  return experiment.Run();
}

OperatingPoint FindKnee(ExperimentConfig base,
                        const std::vector<int>& client_ladder) {
  OperatingPoint point;
  for (int clients : client_ladder) {
    ExperimentConfig config = base;
    config.clients_per_group = clients;
    ExperimentResult result = RunOnce(std::move(config));
    if (result.throughput_tps > point.throughput_tps) {
      point.throughput_tps = result.throughput_tps;
      point.clients_per_group = clients;
      point.result = result;
    }
  }
  // Light-load probe for the intrinsic commit latency.
  ExperimentConfig light = base;
  light.clients_per_group = kLatencyProbeClients;
  ExperimentResult light_result = RunOnce(std::move(light));
  point.latency_ms = light_result.mean_latency_ms;
  point.p99_latency_ms = light_result.p99_latency_ms;
  return point;
}

std::vector<int> DefaultLadder(const BenchOptions& opts) {
  if (opts.fast) return {500, 2000, 8000};
  return {250, 1000, 4000, 12000};
}

TablePrinter::TablePrinter(std::vector<std::string> columns, bool csv)
    : columns_(std::move(columns)), csv_(csv) {
  widths_.reserve(columns_.size());
  for (const std::string& c : columns_)
    widths_.push_back(std::max<size_t>(c.size() + 2, 14));
}

void TablePrinter::PrintHeader() {
  if (header_printed_) return;
  header_printed_ = true;
  if (csv_) {
    for (size_t i = 0; i < columns_.size(); ++i)
      std::printf("%s%s", columns_[i].c_str(),
                  i + 1 < columns_.size() ? "," : "\n");
    return;
  }
  for (size_t i = 0; i < columns_.size(); ++i)
    std::printf("%-*s", static_cast<int>(widths_[i]), columns_[i].c_str());
  std::printf("\n");
  size_t total = 0;
  for (size_t w : widths_) total += w;
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  PrintHeader();
  if (csv_) {
    for (size_t i = 0; i < cells.size(); ++i)
      std::printf("%s%s", cells[i].c_str(), i + 1 < cells.size() ? "," : "\n");
    return;
  }
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    size_t width = std::max(widths_[i], cells[i].size() + 2);
    std::printf("%-*s", static_cast<int>(width), cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string TablePrinter::Num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace bench
}  // namespace massbft
