#include "bench/bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "core/bench_baseline.h"
#include "obs/json_writer.h"

namespace massbft {
namespace bench {

namespace {
BenchOptions g_options;
/// JSON objects of every run so far (--json rewrites the file per run, so
/// a killed bench still leaves a valid array behind).
std::vector<std::string> g_json_runs;
}  // namespace

const BenchOptions& GlobalOptions() { return g_options; }

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions opts;
  if (argc > 0 && argv[0] != nullptr) {
    std::string program = argv[0];
    size_t slash = program.find_last_of('/');
    opts.bench_name =
        slash == std::string::npos ? program : program.substr(slash + 1);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) opts.csv = true;
    if (std::strcmp(argv[i], "--fast") == 0) opts.fast = true;
    if (std::strcmp(argv[i], "--full") == 0) opts.fast = false;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) opts.trace_file = argv[i] + 8;
    if (std::strcmp(argv[i], "--json") == 0) opts.json_file = "bench_results.json";
    if (std::strncmp(argv[i], "--json=", 7) == 0) opts.json_file = argv[i] + 7;
    if (std::strncmp(argv[i], "--baseline=", 11) == 0)
      opts.baseline_file = argv[i] + 11;
    if (std::strncmp(argv[i], "--repeat=", 9) == 0)
      opts.repeat = std::max(1, std::atoi(argv[i] + 9));
  }
  g_options = opts;
  g_json_runs.clear();
  return opts;
}

SimTime RunDuration(const BenchOptions& opts) {
  return opts.fast ? 3 * kSecond : 6 * kSecond;
}
SimTime WarmupDuration(const BenchOptions& opts) {
  return opts.fast ? 1 * kSecond : 2 * kSecond;
}

namespace {

/// Mean and (sample) standard deviation of one wall-clock field.
struct RepeatStat {
  double mean = 0;
  double stdev = 0;
};

RepeatStat StatOf(const std::vector<double>& samples) {
  RepeatStat stat;
  if (samples.empty()) return stat;
  double sum = 0;
  for (double s : samples) sum += s;
  stat.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double sq = 0;
    for (double s : samples) sq += (s - stat.mean) * (s - stat.mean);
    stat.stdev = std::sqrt(sq / static_cast<double>(samples.size() - 1));
  }
  return stat;
}

}  // namespace

ExperimentResult RunOnce(ExperimentConfig config) {
  if (!g_options.trace_file.empty()) config.enable_tracing = true;
  ExperimentConfig repeat_config = config;  // For --repeat re-runs.
  Experiment experiment(std::move(config));
  Status status = experiment.Setup();
  MASSBFT_CHECK(status.ok());
  ExperimentResult result = experiment.Run();

  // --repeat=N: re-run the identical (seed-deterministic) experiment and
  // fold the host-timing samples into mean +- stdev. The protocol-level
  // fields of every repeat match the first run, so only the wall-clock
  // fields are aggregated.
  if (g_options.repeat > 1) {
    std::vector<double> wall_ms{result.wall_ms};
    std::vector<double> eps{result.events_per_sec};
    std::vector<double> ratio{result.sim_time_ratio};
    for (int r = 1; r < g_options.repeat; ++r) {
      Experiment again(repeat_config);
      MASSBFT_CHECK(again.Setup().ok());
      ExperimentResult repeat_result = again.Run();
      wall_ms.push_back(repeat_result.wall_ms);
      eps.push_back(repeat_result.events_per_sec);
      ratio.push_back(repeat_result.sim_time_ratio);
    }
    RepeatStat wall_stat = StatOf(wall_ms);
    RepeatStat eps_stat = StatOf(eps);
    RepeatStat ratio_stat = StatOf(ratio);
    result.wall_ms = wall_stat.mean;
    result.events_per_sec = eps_stat.mean;
    result.sim_time_ratio = ratio_stat.mean;
    std::fprintf(stderr,
                 "[repeat x%d] wall_ms %.1f +- %.1f | events/sec %.0f +- "
                 "%.0f | sim_time_ratio %.2f +- %.2f\n",
                 g_options.repeat, wall_stat.mean, wall_stat.stdev,
                 eps_stat.mean, eps_stat.stdev, ratio_stat.mean,
                 ratio_stat.stdev);
  }

  if (!g_options.trace_file.empty()) {
    Status written = experiment.WriteTrace(g_options.trace_file);
    if (!written.ok()) {
      MASSBFT_LOG(kWarn) << "trace export failed: " << written.ToString();
    }
  }
  if (!g_options.baseline_file.empty()) {
    // Rewritten per run: the file always holds the latest completed run's
    // baseline even if the bench is interrupted mid-sweep.
    Status written = WriteBenchBaselineFile(
        g_options.baseline_file,
        g_options.bench_name.empty() ? "bench" : g_options.bench_name, result);
    if (!written.ok()) {
      MASSBFT_LOG(kWarn) << "baseline export failed: " << written.ToString();
    }
  }
  if (!g_options.json_file.empty()) {
    std::ostringstream metrics_json;
    obs::JsonWriter metrics_writer(metrics_json);
    experiment.telemetry().registry().WriteJson(metrics_writer);
    g_json_runs.push_back("{\"result\":" + result.ToJson() +
                          ",\"metrics\":" + metrics_json.str() + "}");
    std::ofstream out(g_options.json_file, std::ios::trunc);
    out << "[\n";
    for (size_t i = 0; i < g_json_runs.size(); ++i)
      out << g_json_runs[i] << (i + 1 < g_json_runs.size() ? ",\n" : "\n");
    out << "]\n";
  }
  return result;
}

OperatingPoint FindKnee(ExperimentConfig base,
                        const std::vector<int>& client_ladder) {
  OperatingPoint point;
  for (int clients : client_ladder) {
    ExperimentConfig config = base;
    config.clients_per_group = clients;
    ExperimentResult result = RunOnce(std::move(config));
    if (result.throughput_tps > point.throughput_tps) {
      point.throughput_tps = result.throughput_tps;
      point.clients_per_group = clients;
      point.result = result;
    }
  }
  // Light-load probe for the intrinsic commit latency.
  ExperimentConfig light = base;
  light.clients_per_group = kLatencyProbeClients;
  ExperimentResult light_result = RunOnce(std::move(light));
  point.latency_ms = light_result.mean_latency_ms;
  point.p99_latency_ms = light_result.p99_latency_ms;
  return point;
}

std::vector<int> DefaultLadder(const BenchOptions& opts) {
  if (opts.fast) return {500, 2000, 8000};
  return {250, 1000, 4000, 12000};
}

TablePrinter::TablePrinter(std::vector<std::string> columns, bool csv)
    : columns_(std::move(columns)), csv_(csv) {
  widths_.reserve(columns_.size());
  for (const std::string& c : columns_)
    widths_.push_back(std::max<size_t>(c.size() + 2, 14));
}

void TablePrinter::PrintHeader() {
  if (header_printed_) return;
  header_printed_ = true;
  if (csv_) {
    for (size_t i = 0; i < columns_.size(); ++i)
      std::printf("%s%s", columns_[i].c_str(),
                  i + 1 < columns_.size() ? "," : "\n");
    return;
  }
  for (size_t i = 0; i < columns_.size(); ++i)
    std::printf("%-*s", static_cast<int>(widths_[i]), columns_[i].c_str());
  std::printf("\n");
  size_t total = 0;
  for (size_t w : widths_) total += w;
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  PrintHeader();
  if (csv_) {
    for (size_t i = 0; i < cells.size(); ++i)
      std::printf("%s%s", cells[i].c_str(), i + 1 < cells.size() ? "," : "\n");
    return;
  }
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    size_t width = std::max(widths_[i], cells[i].size() + 2);
    std::printf("%-*s", static_cast<int>(width), cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string TablePrinter::Num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace bench
}  // namespace massbft
