#include "bench/bench_util.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "obs/json_writer.h"

namespace massbft {
namespace bench {

namespace {
BenchOptions g_options;
/// JSON objects of every run so far (--json rewrites the file per run, so
/// a killed bench still leaves a valid array behind).
std::vector<std::string> g_json_runs;
}  // namespace

const BenchOptions& GlobalOptions() { return g_options; }

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) opts.csv = true;
    if (std::strcmp(argv[i], "--fast") == 0) opts.fast = true;
    if (std::strcmp(argv[i], "--full") == 0) opts.fast = false;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) opts.trace_file = argv[i] + 8;
    if (std::strcmp(argv[i], "--json") == 0) opts.json_file = "bench_results.json";
    if (std::strncmp(argv[i], "--json=", 7) == 0) opts.json_file = argv[i] + 7;
  }
  g_options = opts;
  g_json_runs.clear();
  return opts;
}

SimTime RunDuration(const BenchOptions& opts) {
  return opts.fast ? 3 * kSecond : 6 * kSecond;
}
SimTime WarmupDuration(const BenchOptions& opts) {
  return opts.fast ? 1 * kSecond : 2 * kSecond;
}

ExperimentResult RunOnce(ExperimentConfig config) {
  if (!g_options.trace_file.empty()) config.enable_tracing = true;
  Experiment experiment(std::move(config));
  Status status = experiment.Setup();
  MASSBFT_CHECK(status.ok());
  ExperimentResult result = experiment.Run();

  if (!g_options.trace_file.empty()) {
    Status written = experiment.WriteTrace(g_options.trace_file);
    if (!written.ok()) {
      MASSBFT_LOG(kWarn) << "trace export failed: " << written.ToString();
    }
  }
  if (!g_options.json_file.empty()) {
    std::ostringstream metrics_json;
    obs::JsonWriter metrics_writer(metrics_json);
    experiment.telemetry().registry().WriteJson(metrics_writer);
    g_json_runs.push_back("{\"result\":" + result.ToJson() +
                          ",\"metrics\":" + metrics_json.str() + "}");
    std::ofstream out(g_options.json_file, std::ios::trunc);
    out << "[\n";
    for (size_t i = 0; i < g_json_runs.size(); ++i)
      out << g_json_runs[i] << (i + 1 < g_json_runs.size() ? ",\n" : "\n");
    out << "]\n";
  }
  return result;
}

OperatingPoint FindKnee(ExperimentConfig base,
                        const std::vector<int>& client_ladder) {
  OperatingPoint point;
  for (int clients : client_ladder) {
    ExperimentConfig config = base;
    config.clients_per_group = clients;
    ExperimentResult result = RunOnce(std::move(config));
    if (result.throughput_tps > point.throughput_tps) {
      point.throughput_tps = result.throughput_tps;
      point.clients_per_group = clients;
      point.result = result;
    }
  }
  // Light-load probe for the intrinsic commit latency.
  ExperimentConfig light = base;
  light.clients_per_group = kLatencyProbeClients;
  ExperimentResult light_result = RunOnce(std::move(light));
  point.latency_ms = light_result.mean_latency_ms;
  point.p99_latency_ms = light_result.p99_latency_ms;
  return point;
}

std::vector<int> DefaultLadder(const BenchOptions& opts) {
  if (opts.fast) return {500, 2000, 8000};
  return {250, 1000, 4000, 12000};
}

TablePrinter::TablePrinter(std::vector<std::string> columns, bool csv)
    : columns_(std::move(columns)), csv_(csv) {
  widths_.reserve(columns_.size());
  for (const std::string& c : columns_)
    widths_.push_back(std::max<size_t>(c.size() + 2, 14));
}

void TablePrinter::PrintHeader() {
  if (header_printed_) return;
  header_printed_ = true;
  if (csv_) {
    for (size_t i = 0; i < columns_.size(); ++i)
      std::printf("%s%s", columns_[i].c_str(),
                  i + 1 < columns_.size() ? "," : "\n");
    return;
  }
  for (size_t i = 0; i < columns_.size(); ++i)
    std::printf("%-*s", static_cast<int>(widths_[i]), columns_[i].c_str());
  std::printf("\n");
  size_t total = 0;
  for (size_t w : widths_) total += w;
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  PrintHeader();
  if (csv_) {
    for (size_t i = 0; i < cells.size(); ++i)
      std::printf("%s%s", cells[i].c_str(), i + 1 < cells.size() ? "," : "\n");
    return;
  }
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    size_t width = std::max(widths_[i], cells[i].size() + 2);
    std::printf("%-*s", static_cast<int>(width), cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string TablePrinter::Num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace bench
}  // namespace massbft
