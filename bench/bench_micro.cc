// Microbenchmarks (google-benchmark) for the primitive layers: SHA-256,
// HMAC, Merkle trees, GF(2^8), Reed-Solomon coding, transfer plans, entry
// codecs, Zipf generation and Aria batch execution. These quantify the
// paper's claim that coding overhead is negligible (Fig 11: ~2.3 ms per
// entry for encode + rebuild).

#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "core/experiment.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/signature.h"
#include "db/aria.h"
#include "db/kv_store.h"
#include "ec/gf256.h"
#include "ec/reed_solomon.h"
#include "proto/entry.h"
#include "replication/encoder.h"
#include "replication/transfer_plan.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace massbft {
namespace {

Bytes RandomBytes(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& byte : b) byte = static_cast<uint8_t>(rng.NextBelow(256));
  return b;
}

// ---------------------------------------------------------------- Crypto

void BM_Sha256(benchmark::State& state) {
  Bytes data = RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::Hash(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

// Same hash with the portable compression function pinned: the spread
// against BM_Sha256 is the SHA-NI speedup on this machine.
void BM_Sha256Scalar(benchmark::State& state) {
  Bytes data = RandomBytes(static_cast<size_t>(state.range(0)));
  Sha256::ForceImplForTest(Sha256::Impl::kScalar);
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::Hash(data));
  Sha256::RestoreImplDispatch();
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256Scalar)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = RandomBytes(32);
  Bytes data = RandomBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(HmacSha256(key, data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(201)->Arg(4096);

void BM_SignVerify(benchmark::State& state) {
  KeyRegistry registry;
  registry.RegisterNode(NodeId{0, 0});
  Bytes msg = RandomBytes(32);
  Signature sig = registry.Sign(NodeId{0, 0}, msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(registry.Verify(NodeId{0, 0}, msg, sig));
}
BENCHMARK(BM_SignVerify);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<Bytes> blocks;
  for (int i = 0; i < state.range(0); ++i)
    blocks.push_back(RandomBytes(4096, static_cast<uint64_t>(i)));
  for (auto _ : state) benchmark::DoNotOptimize(MerkleTree::Build(blocks));
}
BENCHMARK(BM_MerkleBuild)->Arg(7)->Arg(28)->Arg(255);

void BM_MerkleProveVerify(benchmark::State& state) {
  std::vector<Bytes> blocks;
  for (int i = 0; i < 28; ++i)
    blocks.push_back(RandomBytes(4096, static_cast<uint64_t>(i)));
  auto tree = MerkleTree::Build(blocks);
  auto proof = tree->Prove(13);
  Digest leaf = MerkleTree::HashLeaf(blocks[13]);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        MerkleTree::VerifyProof(tree->root(), leaf, *proof));
}
BENCHMARK(BM_MerkleProveVerify);

// ------------------------------------------------------------------- EC

void BM_Gf256MulAddRow(benchmark::State& state) {
  Bytes in = RandomBytes(static_cast<size_t>(state.range(0)));
  Bytes out(in.size(), 0);
  for (auto _ : state) {
    Gf256::MulAddRow(0x57, in.data(), out.data(), in.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Gf256MulAddRow)->Arg(4096)->Arg(65536);

// Portable-kernel counterpart of BM_Gf256MulAddRow (SIMD speedup probe).
void BM_Gf256MulAddRowScalar(benchmark::State& state) {
  Bytes in = RandomBytes(static_cast<size_t>(state.range(0)));
  Bytes out(in.size(), 0);
  Gf256::ForceKernelForTest(Gf256::Kernel::kScalar);
  for (auto _ : state) {
    Gf256::MulAddRow(0x57, in.data(), out.data(), in.size());
    benchmark::DoNotOptimize(out.data());
  }
  Gf256::RestoreKernelDispatch();
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Gf256MulAddRowScalar)->Arg(65536);

void BM_RsEncode(benchmark::State& state) {
  // The paper's 7->7 plan (3 data + 4 parity) and 4->7 (13+15) on a 56 KB
  // entry (270 x 201 B batch).
  int n_data = static_cast<int>(state.range(0));
  int n_parity = static_cast<int>(state.range(1));
  auto rs = ReedSolomon::Create(n_data, n_parity);
  Bytes entry = RandomBytes(56000);
  for (auto _ : state) benchmark::DoNotOptimize(rs->EncodeMessage(entry));
  state.SetBytesProcessed(state.iterations() * 56000);
}
BENCHMARK(BM_RsEncode)->Args({3, 4})->Args({13, 15});

void BM_RsReconstruct(benchmark::State& state) {
  auto rs = ReedSolomon::Create(13, 15);
  Bytes entry = RandomBytes(56000);
  auto shards = rs->EncodeMessage(entry);
  std::vector<std::optional<Bytes>> present(shards->begin(), shards->end());
  // Worst case: all data shards lost, rebuild from parity.
  for (int i = 0; i < 13; ++i) present[i].reset();
  for (auto _ : state) benchmark::DoNotOptimize(rs->DecodeMessage(present));
  state.SetBytesProcessed(state.iterations() * 56000);
}
BENCHMARK(BM_RsReconstruct);

void BM_EncodeEntryForPlan(benchmark::State& state) {
  std::vector<Transaction> txns;
  for (int i = 0; i < 270; ++i)
    txns.push_back(Transaction{static_cast<uint64_t>(i), 0, 0,
                               RandomBytes(201, static_cast<uint64_t>(i))});
  Entry entry(0, 0, txns);
  auto plan = TransferPlan::Create(7, 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(EncodeEntryForPlan(entry, *plan));
}
BENCHMARK(BM_EncodeEntryForPlan);

void BM_TransferPlanCreate(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(TransferPlan::Create(19, 16));
}
BENCHMARK(BM_TransferPlanCreate);

// ------------------------------------------------------------ Proto / DB

void BM_EntryEncodeDecode(benchmark::State& state) {
  std::vector<Transaction> txns;
  for (int i = 0; i < 270; ++i)
    txns.push_back(Transaction{static_cast<uint64_t>(i), 0, 0,
                               RandomBytes(201, static_cast<uint64_t>(i))});
  Entry entry(0, 0, txns);
  for (auto _ : state)
    benchmark::DoNotOptimize(Entry::Decode(entry.Encoded()));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(entry.ByteSize()));
}
BENCHMARK(BM_EntryEncodeDecode);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(1'000'000, 0.99);
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Next(rng));
}
BENCHMARK(BM_ZipfNext);

void BM_AriaBatch(benchmark::State& state) {
  auto workload = MakeWorkload(WorkloadKind::kYcsbA, 1.0);
  KvStore store;
  workload->InstallInitialState(&store);
  AriaExecutor executor(&store, workload->MakeFactory());
  Rng rng(4);
  std::vector<Transaction> batch;
  for (int i = 0; i < state.range(0); ++i)
    batch.push_back(Transaction{static_cast<uint64_t>(i), 0, 0,
                                workload->NextPayload(rng)});
  for (auto _ : state) benchmark::DoNotOptimize(executor.ExecuteBatch(batch));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AriaBatch)->Arg(37)->Arg(270);

// ------------------------------------------------------------- Simulator

// Raw event-loop turnover: schedule-then-run batches of small callbacks.
// With InlineFunction callbacks and the reserved binary heap this path
// performs no allocation per event.
void BM_SimulatorEventLoop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Simulator sim;
  sim.Reserve(static_cast<size_t>(batch));
  uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i)
      sim.Schedule(i % 7, [&sink, i] { sink += static_cast<uint64_t>(i); });
    sim.RunAll();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimulatorEventLoop)->Arg(1024);

// -------------------------------------------------------- Observability

// Whole-simulation cost of trace recording: Arg(0) runs a short MassBFT
// experiment with tracing off, Arg(1) with tracing on. The acceptance bar
// is <2% wall-clock overhead between the two.
void BM_ExperimentTracing(benchmark::State& state) {
  for (auto _ : state) {
    ExperimentConfig config;
    config.topology = TopologyConfig::Nationwide(2, 4);
    config.protocol = ProtocolConfig::MassBft();
    config.workload = WorkloadKind::kYcsbA;
    config.workload_scale = 0.01;
    config.clients_per_group = 50;
    config.duration = kSecond;
    config.warmup = kSecond / 4;
    config.enable_tracing = state.range(0) != 0;
    Experiment experiment(std::move(config));
    MASSBFT_CHECK(experiment.Setup().ok());
    benchmark::DoNotOptimize(experiment.Run());
  }
}
BENCHMARK(BM_ExperimentTracing)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace massbft

BENCHMARK_MAIN();
