// Reproduces paper Figure 15: MassBFT under failures, as a timeline.
//   t = 20 s: two Byzantine nodes per group start colluding — they encode
//             a tampered entry into chunks and broadcast tampered chunks
//             locally. Expected: throughput unchanged (correct nodes
//             bucket by Merkle root, ban the fake chunk ids, rebuild from
//             correct chunks), latency up by a few milliseconds.
//   t = 40 s: group G0 crashes. Expected: throughput dips and latency
//             spikes while ordering waits on the dead group's timestamps;
//             after the takeover timeout another group freezes G0's clock
//             and assigns it, restoring progress at ~2/3 throughput (the
//             dead group's clients are gone).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

using namespace massbft;
using namespace massbft::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  std::printf("=== Fig 15: fault timeline (Byzantine @20s, group crash "
              "@40s) ===\n");

  double scale = opts.fast ? 0.25 : 1.0;  // Timeline length multiplier.
  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(3, 7);
  config.protocol = ProtocolConfig::MassBft();
  config.protocol.pipeline_depth = 8;
  config.protocol.group_crash_timeout = SecondsToSim(2 * scale);
  config.workload = WorkloadKind::kYcsbA;
  config.clients_per_group = 1000;
  config.duration = SecondsToSim(60 * scale);
  config.warmup = SecondsToSim(2 * scale);
  config.faults.byzantine_per_group = 2;
  config.faults.byzantine_from = SecondsToSim(20 * scale);
  config.faults.crash_group = 0;
  config.faults.crash_at = SecondsToSim(40 * scale);

  Experiment experiment(config);
  Status status = experiment.Setup();
  MASSBFT_CHECK(status.ok());
  ExperimentResult result = experiment.Run();

  TablePrinter table({"t_s", "ktps", "latency_ms", "phase"}, opts.csv);
  for (const auto& point : result.timeline) {
    const char* phase = "normal";
    if (point.time_s >= 40 * scale)
      phase = "group_0_crashed";
    else if (point.time_s >= 20 * scale)
      phase = "byzantine_active";
    table.Row({TablePrinter::Num(point.time_s, 0),
               TablePrinter::Num(point.tps / 1000.0),
               TablePrinter::Num(point.mean_latency_ms), phase});
  }

  int64_t agreement = experiment.CheckAgreement();
  std::printf("\nagreement across surviving nodes: %s (%lld entries)\n",
              agreement >= 0 ? "OK" : "DIVERGED",
              static_cast<long long>(agreement));
  return agreement >= 0 ? 0 : 1;
}
