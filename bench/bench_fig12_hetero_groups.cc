// Reproduces paper Figure 12: heterogeneous group sizes (G1 = 4 nodes,
// G2 = G3 = 7 nodes) comparing Baseline, BR (bijective-only replication),
// EBR (encoded bijective, round ordering) and EBR+A (MassBFT: encoded
// bijective + asynchronous VTS ordering).
//
// Expected shape: Baseline lowest; BR higher but every group pinned to the
// same rate; EBR higher still but the big groups remain chained to slow G1
// by round ordering; EBR+A (MassBFT) highest, with the 7-node groups
// proposing at their own faster pace (per-group breakdown shows the skew).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"

using namespace massbft;
using namespace massbft::bench;

namespace {

struct GroupBreakdown {
  double total_ktps;
  double latency_ms;
  double per_group_ktps[3];
};

GroupBreakdown Run(ProtocolConfig protocol, const BenchOptions& opts) {
  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(3, 7);
  config.topology.group_sizes = {4, 7, 7};
  config.protocol = std::move(protocol);
  config.protocol.pipeline_depth = 8;
  config.workload = WorkloadKind::kYcsbA;
  config.duration = RunDuration(opts);
  config.warmup = WarmupDuration(opts);
  // Saturating load (the regime the paper evaluates).
  config.clients_per_group = opts.fast ? 1500 : 3000;

  Experiment experiment(config);
  Status status = experiment.Setup();
  MASSBFT_CHECK(status.ok());
  ExperimentResult result = experiment.Run();

  GroupBreakdown breakdown{};
  breakdown.total_ktps = result.throughput_tps / 1000.0;
  breakdown.latency_ms = result.mean_latency_ms;
  // Per-group throughput from each group leader's own-entry executions —
  // count committed transactions of entries the group itself proposed.
  double window_s = SimToSeconds(config.duration - config.warmup);
  for (int g = 0; g < 3; ++g) {
    const GroupNode* leader =
        experiment.node(NodeId{static_cast<uint16_t>(g), 0});
    // executed_txns counts all groups' txns; approximate the per-group
    // share via the leader's own clock (committed own entries) times the
    // average batch size.
    breakdown.per_group_ktps[g] =
        static_cast<double>(leader->own_clock()) *
        result.avg_batch_size / SimToSeconds(config.duration) / 1000.0;
  }
  (void)window_s;
  return breakdown;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  std::printf("=== Fig 12: heterogeneous groups (G1=4, G2=G3=7 nodes) ===\n");

  struct Variant {
    const char* name;
    ProtocolConfig config;
  };
  Variant variants[] = {
      {"Baseline", ProtocolConfig::Baseline()},
      {"BR", ProtocolConfig::Br()},
      {"EBR", ProtocolConfig::Ebr()},
      {"EBR+A (MassBFT)", ProtocolConfig::MassBft()},
  };

  TablePrinter table({"variant", "total_ktps", "latency_ms", "G1_ktps",
                      "G2_ktps", "G3_ktps"},
                     opts.csv);
  for (Variant& variant : variants) {
    GroupBreakdown b = Run(variant.config, opts);
    table.Row({variant.name, TablePrinter::Num(b.total_ktps),
               TablePrinter::Num(b.latency_ms),
               TablePrinter::Num(b.per_group_ktps[0]),
               TablePrinter::Num(b.per_group_ktps[1]),
               TablePrinter::Num(b.per_group_ktps[2])});
  }
  if (!opts.csv)
    std::printf("\n(per-group columns: entries proposed by that group x avg "
                "batch; under round ordering all groups are pinned to the "
                "same rate, under EBR+A the 7-node groups run ahead)\n");
  return 0;
}
