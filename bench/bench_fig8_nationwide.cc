// Reproduces paper Figure 8: throughput and latency of MassBFT, Steward,
// ISS, GeoBFT and Baseline on the nationwide cluster (3 groups x 7 nodes,
// RTT 26.7-43.4 ms, 20 Mbps WAN per node) under YCSB-A, YCSB-B, SmallBank
// and TPC-C.
//
// Expected shape (paper Section VI-A): MassBFT achieves the highest
// throughput on every workload (5.49x-29.96x over the baselines); GeoBFT
// has the lowest latency (0.5 RTT, no global consensus); MassBFT's latency
// slightly exceeds Baseline's (+0.5 RTT for the VTS assignment); Steward
// is the slowest (single proposer); TPC-C gains are smallest (signature
// verification + Payment-hotspot aborts).

#include <cstdio>

#include "bench/bench_util.h"

using namespace massbft;
using namespace massbft::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  std::printf(
      "=== Fig 8: nationwide cluster (3x7, 20 Mbps WAN, RTT 27-43 ms) ===\n");

  const ProtocolKind kProtocols[] = {
      ProtocolKind::kMassBft, ProtocolKind::kSteward, ProtocolKind::kIss,
      ProtocolKind::kGeoBft, ProtocolKind::kBaseline};
  const WorkloadKind kWorkloads[] = {
      WorkloadKind::kYcsbA, WorkloadKind::kYcsbB, WorkloadKind::kSmallBank,
      WorkloadKind::kTpcc};

  TablePrinter table({"workload", "protocol", "ktps", "latency_ms", "p99_ms",
                      "batch", "clients"},
                     opts.csv);
  double massbft_tput[4] = {0};
  double baseline_tput[4] = {0};
  int workload_index = 0;
  for (WorkloadKind workload : kWorkloads) {
    for (ProtocolKind protocol : kProtocols) {
      ExperimentConfig config;
      config.topology = TopologyConfig::Nationwide(3, 7);
      config.protocol = ProtocolConfig::ForKind(protocol);
      config.protocol.pipeline_depth = 8;
      config.workload = workload;
      config.duration = RunDuration(opts);
      config.warmup = WarmupDuration(opts);
      OperatingPoint point = FindKnee(config, DefaultLadder(opts));
      if (protocol == ProtocolKind::kMassBft)
        massbft_tput[workload_index] = point.throughput_tps;
      if (protocol == ProtocolKind::kBaseline)
        baseline_tput[workload_index] = point.throughput_tps;
      table.Row({WorkloadKindName(workload), ProtocolKindName(protocol),
                 TablePrinter::Num(point.throughput_tps / 1000.0),
                 TablePrinter::Num(point.latency_ms),
                 TablePrinter::Num(point.p99_latency_ms),
                 TablePrinter::Num(point.result.avg_batch_size, 0),
                 std::to_string(point.clients_per_group)});
    }
    ++workload_index;
  }

  if (!opts.csv) {
    std::printf("\nMassBFT / Baseline speedups (paper: 5.49x-29.96x across "
                "all baselines):\n");
    const char* names[] = {"YCSB-A", "YCSB-B", "SmallBank", "TPC-C"};
    for (int i = 0; i < 4; ++i)
      std::printf("  %-10s %.2fx\n", names[i],
                  baseline_tput[i] > 0 ? massbft_tput[i] / baseline_tput[i]
                                       : 0.0);
  }
  return 0;
}
