#ifndef MASSBFT_BENCH_BENCH_UTIL_H_
#define MASSBFT_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "core/experiment.h"

namespace massbft {
namespace bench {

/// Shared experiment-driver helpers for the figure-reproduction benches.
/// Each bench binary prints the paper's series as an aligned text table;
/// pass --csv for machine-readable output. The default runs are short
/// (whole suite in minutes); pass --full for longer, denser sweeps with
/// less noise.
struct BenchOptions {
  bool csv = false;
  bool fast = true;  // Cleared by --full.
  /// --trace=FILE: record protocol traces and write a Chrome trace-event
  /// JSON file (chrome://tracing / Perfetto). With several runs in one
  /// bench, the last run's trace wins.
  std::string trace_file;
  /// --json[=FILE]: append each run's result + metrics registry to a JSON
  /// array file (default bench_results.json), rewritten after every run.
  std::string json_file;
  /// --repeat=N: run each experiment N times and report the wall-clock
  /// fields (wall_ms, events_per_sec, sim_time_ratio) as mean +- stdev
  /// across repeats. Simulated results are seed-deterministic, so only the
  /// host-timing fields vary; the returned result carries the means.
  int repeat = 1;
  /// --baseline=FILE: after every run, rewrite FILE as a schema-versioned
  /// perf-baseline document (core/bench_baseline.h) for the last result —
  /// the same format as the checked-in BENCH_*.json trajectory files.
  std::string baseline_file;
  /// Bench name stamped into baseline documents (basename of argv[0]).
  std::string bench_name;

  static BenchOptions Parse(int argc, char** argv);
};

/// The options from the latest Parse() call (RunOnce consults these so
/// every bench gets --trace/--json without plumbing).
const BenchOptions& GlobalOptions();

/// Duration/warmup presets scaled by --fast.
SimTime RunDuration(const BenchOptions& opts);
SimTime WarmupDuration(const BenchOptions& opts);

/// Measured operating point of one protocol configuration.
struct OperatingPoint {
  double throughput_tps = 0;   // Peak over the client ladder.
  double latency_ms = 0;       // Mean latency at light load (see FindKnee).
  double p99_latency_ms = 0;   // p99 at light load.
  int clients_per_group = 0;   // Client count that produced the peak.
  ExperimentResult result;     // Full result at the peak.
};

/// Runs one experiment config and returns its result (dies on setup
/// errors — bench configs are static).
ExperimentResult RunOnce(ExperimentConfig config);

/// Paper-style "throughput and latency" measurement: peak throughput is
/// the maximum over a closed-loop client ladder; latency is measured in a
/// separate light-load run (kLatencyProbeClients per group), reflecting
/// the protocol's intrinsic commit path rather than overload queueing.
constexpr int kLatencyProbeClients = 150;
OperatingPoint FindKnee(ExperimentConfig base,
                        const std::vector<int>& client_ladder);

/// The default client ladder (geometric).
std::vector<int> DefaultLadder(const BenchOptions& opts);

/// Formatted output: aligned table or CSV rows.
class TablePrinter {
 public:
  TablePrinter(std::vector<std::string> columns, bool csv);

  void Row(const std::vector<std::string>& cells);
  static std::string Num(double v, int decimals = 1);

 private:
  std::vector<std::string> columns_;
  std::vector<size_t> widths_;
  bool csv_;
  bool header_printed_ = false;
  void PrintHeader();
};

}  // namespace bench
}  // namespace massbft

#endif  // MASSBFT_BENCH_BENCH_UTIL_H_
