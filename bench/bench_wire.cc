// Wire-path microbenchmark: how fast can one transport endpoint push
// frames to another on this host, and how many syscalls does each frame
// cost? Two scenarios:
//
//   * small-frame flood — back-to-back heartbeat frames (~30 bytes), the
//     consensus-vote shape that dominates frame counts. Stresses per-frame
//     overhead: syscalls, allocations, queue bookkeeping.
//   * mixed-size replay — a deterministic cycle of heartbeats, PBFT votes,
//     ~2 KB entry transfers and ~32 KB chunk batches, the traffic mix of a
//     running cluster. Stresses the batch writer across frame-size jumps.
//
// Reported per scenario: frames/sec end-to-end (first send to last
// delivery), MB/sec, and syscalls/frame on both sides from the transport's
// own counters. --baseline=FILE writes the schema-versioned perf-trajectory
// document (core/bench_baseline.h) that BENCH_wire.json tracks;
// tools/obs/compare_bench.py diffs two such documents.
//
// The sender retries on backpressure (closed-loop flood): the measured
// number is the pipeline's drain rate, not the drop rate.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/bench_baseline.h"
#include "net/buffer_pool.h"
#include "net/inproc_transport.h"
#include "net/tcp_transport.h"
#include "obs/json_writer.h"
#include "proto/messages.h"

namespace massbft {
namespace {

struct WireBenchOptions {
  uint64_t small_frames = 300000;
  uint64_t mixed_frames = 60000;
  bool inproc = false;
  uint16_t port_base = 21100;
  std::string baseline_file;
};

WireBenchOptions ParseArgs(int argc, char** argv) {
  WireBenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--frames=")) {
      opts.small_frames = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--mixed-frames=")) {
      opts.mixed_frames = std::strtoull(v, nullptr, 10);
    } else if (arg == "--inproc") {
      opts.inproc = true;
    } else if (const char* v = value("--port-base=")) {
      opts.port_base = static_cast<uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (const char* v = value("--baseline=")) {
      opts.baseline_file = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_wire [--frames=N] [--mixed-frames=N] "
                   "[--inproc] [--port-base=P] [--baseline=FILE]\n");
      std::exit(2);
    }
  }
  return opts;
}

/// Counts delivered frames and wakes the waiter at a target count.
struct CountingSink {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t frames = 0;

  Transport::DeliverFn fn() {
    return [this](Frame) {
      std::lock_guard<std::mutex> lock(mu);
      ++frames;
      cv.notify_all();
    };
  }
  bool WaitFor(uint64_t target, std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, timeout, [&] { return frames >= target; });
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu);
    frames = 0;
  }
};

/// The deterministic message cycle of one scenario.
std::vector<std::unique_ptr<ProtocolMessage>> MakeCycle(bool mixed) {
  std::vector<std::unique_ptr<ProtocolMessage>> cycle;
  if (!mixed) {
    cycle.push_back(std::make_unique<GroupHeartbeatMsg>(1, 42));
    return cycle;
  }
  Rng rng(20250808);
  auto rand_payload = [&](size_t n) {
    Bytes b(n);
    for (auto& byte : b) byte = static_cast<uint8_t>(rng.NextU64());
    return b;
  };
  // 8 heartbeats : 4 votes : 2 entry transfers : 1 chunk batch — roughly a
  // running cluster's frame mix by count, heavily skewed to small frames
  // while the bytes are dominated by the large ones.
  for (int i = 0; i < 8; ++i)
    cycle.push_back(std::make_unique<GroupHeartbeatMsg>(
        static_cast<uint16_t>(i), static_cast<uint64_t>(i)));
  for (int i = 0; i < 4; ++i) {
    Digest digest{};
    Signature sig{};
    for (auto& b : digest) b = static_cast<uint8_t>(rng.NextU64());
    for (auto& b : sig) b = static_cast<uint8_t>(rng.NextU64());
    cycle.push_back(std::make_unique<PbftVoteMsg>(
        MessageType::kPrepare, 1, static_cast<uint64_t>(i), digest, sig));
  }
  for (int i = 0; i < 2; ++i) {
    std::vector<Transaction> txns(4);
    for (auto& txn : txns) {
      txn.id = rng.NextU64();
      txn.client = static_cast<uint32_t>(rng.NextU64());
      txn.payload = rand_payload(512);
    }
    auto entry = std::make_shared<const Entry>(1, static_cast<uint64_t>(i),
                                               std::move(txns));
    cycle.push_back(std::make_unique<EntryTransferMsg>(entry, Certificate{}));
  }
  {
    Digest root{};
    std::vector<Chunk> chunks(4);
    for (uint32_t i = 0; i < chunks.size(); ++i) {
      chunks[i].chunk_id = i;
      chunks[i].data = rand_payload(8192);
      chunks[i].proof.index = i;
      chunks[i].proof.leaf_count = 4;
    }
    cycle.push_back(std::make_unique<ChunkBatchMsg>(
        1, 7, root, Certificate{}, std::move(chunks), 32768));
  }
  return cycle;
}

struct ScenarioResult {
  uint64_t frames = 0;
  uint64_t bytes = 0;
  double wall_ms = 0;
  double frames_per_sec = 0;
  double mb_per_sec = 0;
  double send_syscalls_per_frame = 0;
  double recv_syscalls_per_frame = 0;
  uint64_t backpressure_retries = 0;
  uint64_t pool_allocations = 0;
  uint64_t pool_reuses = 0;
};

/// Floods `frames` messages (cycling through `cycle`) from tx to rx and
/// waits for full delivery. The first `warmup` frames establish the
/// connection and warm buffer pools outside the timed window.
ScenarioResult RunScenario(Transport& tx, Transport& rx, CountingSink& sink,
                           const std::vector<std::unique_ptr<ProtocolMessage>>&
                               cycle,
                           uint64_t frames, uint64_t warmup) {
  const NodeId dst = rx.self();
  auto send_one = [&](uint64_t i) {
    const ProtocolMessage& msg = *cycle[i % cycle.size()];
    uint64_t retries = 0;
    while (!tx.Send(dst, msg).ok()) {
      ++retries;
      std::this_thread::yield();
    }
    return retries;
  };

  sink.Reset();
  for (uint64_t i = 0; i < warmup; ++i) (void)send_one(i);
  if (!sink.WaitFor(warmup, std::chrono::seconds(30))) {
    std::fprintf(stderr, "bench_wire: warmup frames never arrived\n");
    std::exit(1);
  }

  const Transport::Stats tx_before = tx.stats();
  const Transport::Stats rx_before = rx.stats();
  const BufferPool::Stats pool_before = WireBufferPool().stats();

  ScenarioResult r;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < frames; ++i)
    r.backpressure_retries += send_one(warmup + i);
  if (!sink.WaitFor(warmup + frames, std::chrono::seconds(120))) {
    std::fprintf(stderr, "bench_wire: flood frames never arrived\n");
    std::exit(1);
  }
  auto end = std::chrono::steady_clock::now();

  const Transport::Stats tx_after = tx.stats();
  const Transport::Stats rx_after = rx.stats();
  const BufferPool::Stats pool_after = WireBufferPool().stats();

  r.frames = frames;
  r.bytes = tx_after.bytes_sent - tx_before.bytes_sent;
  r.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  r.frames_per_sec = 1000.0 * static_cast<double>(frames) / r.wall_ms;
  r.mb_per_sec =
      1000.0 * static_cast<double>(r.bytes) / r.wall_ms / (1024.0 * 1024.0);
  r.send_syscalls_per_frame =
      static_cast<double>(tx_after.send_syscalls - tx_before.send_syscalls) /
      static_cast<double>(frames);
  r.recv_syscalls_per_frame =
      static_cast<double>(rx_after.recv_syscalls - rx_before.recv_syscalls) /
      static_cast<double>(frames);
  r.pool_allocations = pool_after.allocations - pool_before.allocations;
  r.pool_reuses = pool_after.reuses - pool_before.reuses;
  return r;
}

void Report(const char* name, const ScenarioResult& r) {
  std::printf(
      "%-12s %10.0f frames/s  %8.1f MB/s  %6.3f send-syscalls/frame  "
      "%6.3f recv-syscalls/frame  %8llu pool-allocs  %llu retries\n",
      name, r.frames_per_sec, r.mb_per_sec, r.send_syscalls_per_frame,
      r.recv_syscalls_per_frame,
      static_cast<unsigned long long>(r.pool_allocations),
      static_cast<unsigned long long>(r.backpressure_retries));
}

void WriteScenarioJson(obs::JsonWriter& w, const ScenarioResult& r) {
  w.BeginObject();
  w.Member("frames", r.frames);
  w.Member("bytes", r.bytes);
  w.Member("wall_ms", r.wall_ms);
  w.Member("frames_per_sec", r.frames_per_sec);
  w.Member("mb_per_sec", r.mb_per_sec);
  w.Member("send_syscalls_per_frame", r.send_syscalls_per_frame);
  w.Member("recv_syscalls_per_frame", r.recv_syscalls_per_frame);
  w.Member("backpressure_retries", r.backpressure_retries);
  w.Member("pool_allocations", r.pool_allocations);
  w.Member("pool_reuses", r.pool_reuses);
  w.EndObject();
}

/// Renders the result object of the baseline document: the mandatory
/// ExperimentResult surface (check_bench_schema.py) with the small-flood
/// figures in the headline fields, plus both scenarios in full.
std::string ResultJson(const ScenarioResult& small,
                       const ScenarioResult& mixed) {
  std::ostringstream out;
  obs::JsonWriter w(out);
  w.BeginObject();
  w.Member("mode", std::string("wire"));
  w.Member("throughput_tps", small.frames_per_sec);
  w.Member("mean_latency_ms", 0.0);
  w.Member("p50_latency_ms", 0.0);
  w.Member("p99_latency_ms", 0.0);
  w.Member("committed_txns", small.frames);
  w.Member("aborted_txns", 0.0);
  w.Member("total_wan_bytes", 0.0);
  w.Member("total_lan_bytes", small.bytes);
  w.Member("wan_bytes_per_entry", 0.0);
  w.Member("wall_ms", small.wall_ms);
  w.Key("phases");
  w.BeginObject();
  w.EndObject();
  w.Key("timeline");
  w.BeginArray();
  w.EndArray();
  w.Key("small_flood");
  WriteScenarioJson(w, small);
  w.Key("mixed_replay");
  WriteScenarioJson(w, mixed);
  w.EndObject();
  return out.str();
}

int Run(const WireBenchOptions& opts) {
  std::unique_ptr<InProcHub> hub;
  std::unique_ptr<Transport> tx;
  std::unique_ptr<Transport> rx;
  if (opts.inproc) {
    hub = std::make_unique<InProcHub>();
    tx = hub->CreateTransport(NodeId{0, 0});
    rx = hub->CreateTransport(NodeId{0, 1});
  } else {
    auto ports = MakeLocalPortMap({2}, opts.port_base);
    if (!ports.ok()) {
      std::fprintf(stderr, "bench_wire: %s\n",
                   ports.status().ToString().c_str());
      return 1;
    }
    // Deep queues: the bench measures drain rate, and every backpressure
    // retry is a scheduler round-trip that perturbs the measurement.
    TcpTransport::Options topts;
    topts.max_queue_frames = 8192;
    topts.max_queue_bytes = 64 * 1024 * 1024;
    tx = std::make_unique<TcpTransport>(NodeId{0, 0}, *ports, topts);
    rx = std::make_unique<TcpTransport>(NodeId{0, 1}, *ports, topts);
  }

  CountingSink tx_sink, rx_sink;
  if (Status s = tx->Start(tx_sink.fn()); !s.ok()) {
    std::fprintf(stderr, "bench_wire: %s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = rx->Start(rx_sink.fn()); !s.ok()) {
    std::fprintf(stderr, "bench_wire: %s\n", s.ToString().c_str());
    return 1;
  }

  auto small_cycle = MakeCycle(/*mixed=*/false);
  auto mixed_cycle = MakeCycle(/*mixed=*/true);
  ScenarioResult small =
      RunScenario(*tx, *rx, rx_sink, small_cycle, opts.small_frames,
                  /*warmup=*/std::min<uint64_t>(2000, opts.small_frames));
  Report("small-flood", small);
  ScenarioResult mixed =
      RunScenario(*tx, *rx, rx_sink, mixed_cycle, opts.mixed_frames,
                  /*warmup=*/std::min<uint64_t>(500, opts.mixed_frames));
  Report("mixed-replay", mixed);

  tx->Stop();
  rx->Stop();

  if (!opts.baseline_file.empty()) {
    Status s = WriteBenchBaselineFileRaw(opts.baseline_file, "wire",
                                         ResultJson(small, mixed));
    if (!s.ok()) {
      std::fprintf(stderr, "bench_wire: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("baseline written: %s\n", opts.baseline_file.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace massbft

int main(int argc, char** argv) {
  return massbft::Run(massbft::ParseArgs(argc, argv));
}
