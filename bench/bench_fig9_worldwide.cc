// Reproduces paper Figure 9: the Figure 8 comparison repeated on the
// worldwide cluster (Hong Kong / London / Silicon Valley, RTT 156-206 ms).
//
// Expected shape: throughputs similar to the nationwide results (pipelining
// hides consensus latency); latencies rise with the larger RTTs, most for
// the protocols that pay multiple WAN round trips (MassBFT/Steward via
// Raft; ISS additionally pays epoch synchronization — the paper lengthens
// its epoch from 0.1 s to 0.5 s on this cluster, as does this bench).

#include <cstdio>

#include "bench/bench_util.h"

using namespace massbft;
using namespace massbft::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  std::printf(
      "=== Fig 9: worldwide cluster (3x7, 20 Mbps WAN, RTT 156-206 ms) "
      "===\n");

  const ProtocolKind kProtocols[] = {
      ProtocolKind::kMassBft, ProtocolKind::kSteward, ProtocolKind::kIss,
      ProtocolKind::kGeoBft, ProtocolKind::kBaseline};
  const WorkloadKind kWorkloads[] = {
      WorkloadKind::kYcsbA, WorkloadKind::kYcsbB, WorkloadKind::kSmallBank,
      WorkloadKind::kTpcc};

  TablePrinter table({"workload", "protocol", "ktps", "latency_ms", "p99_ms",
                      "clients"},
                     opts.csv);
  for (WorkloadKind workload : kWorkloads) {
    for (ProtocolKind protocol : kProtocols) {
      ExperimentConfig config;
      config.topology = TopologyConfig::Worldwide(3, 7);
      config.protocol = ProtocolConfig::ForKind(protocol);
      config.protocol.pipeline_depth = 8;
      if (protocol == ProtocolKind::kIss)
        config.protocol.epoch_length = 500 * kMillisecond;  // Paper's tweak.
      config.workload = workload;
      config.duration = RunDuration(opts);
      config.warmup = WarmupDuration(opts);
      OperatingPoint point = FindKnee(config, DefaultLadder(opts));
      table.Row({WorkloadKindName(workload), ProtocolKindName(protocol),
                 TablePrinter::Num(point.throughput_tps / 1000.0),
                 TablePrinter::Num(point.latency_ms),
                 TablePrinter::Num(point.p99_latency_ms),
                 std::to_string(point.clients_per_group)});
    }
  }
  return 0;
}
