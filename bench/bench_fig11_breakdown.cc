// Reproduces paper Figure 11: MassBFT latency breakdown under YCSB-A.
//
// Expected shape: global replication dominates (cross-datacenter RTTs);
// local consensus is the second-largest term (per-transaction signature
// verification); erasure encoding and entry rebuild together cost only a
// few milliseconds (paper: ~2.3 ms) — the coding overhead is negligible.

#include <cstdio>

#include "bench/bench_util.h"

using namespace massbft;
using namespace massbft::bench;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  std::printf("=== Fig 11: MassBFT latency breakdown (YCSB-A, nationwide) "
              "===\n");

  // Moderate fixed load: the breakdown should show the commit path, not
  // overload queueing.
  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(3, 7);
  config.protocol = ProtocolConfig::MassBft();
  config.protocol.pipeline_depth = 8;
  config.workload = WorkloadKind::kYcsbA;
  config.clients_per_group = 400;
  config.duration = RunDuration(opts);
  config.warmup = WarmupDuration(opts);
  ExperimentResult run = RunOnce(config);
  const PhaseStats& p = run.phases;

  double entries = static_cast<double>(p.entries ? p.entries : 1);
  double batching = p.txns > 0 ? p.batching_ms / p.txns : 0;
  double local = p.local_ms / entries;
  double encode = p.encode_ms / entries;
  double global = p.global_ms / entries;
  double rebuild = p.rebuilds > 0 ? p.rebuild_ms / p.rebuilds : 0;
  double exec = p.exec_ms / entries;

  TablePrinter table({"phase", "ms", "share_pct"}, opts.csv);
  double total = batching + local + encode + global + exec;
  table.Row({"batching_wait", TablePrinter::Num(batching),
             TablePrinter::Num(100 * batching / total)});
  table.Row({"local_consensus", TablePrinter::Num(local),
             TablePrinter::Num(100 * local / total)});
  table.Row({"entry_encoding", TablePrinter::Num(encode, 2),
             TablePrinter::Num(100 * encode / total)});
  table.Row({"global_replication", TablePrinter::Num(global),
             TablePrinter::Num(100 * global / total)});
  table.Row({"entry_rebuild*", TablePrinter::Num(rebuild, 2), "-"});
  table.Row({"ordering_execution", TablePrinter::Num(exec),
             TablePrinter::Num(100 * exec / total)});
  table.Row({"end_to_end_mean", TablePrinter::Num(run.mean_latency_ms),
             "100"});
  if (!opts.csv)
    std::printf("\n(*) measured at receiver-group leaders; overlaps the "
                "global replication span.\ncoding overhead (encode+rebuild): "
                "%.2f ms (paper: ~2.3 ms)\n",
                encode + rebuild);

  // Cross-check: the span-derived breakdown should reconstruct the
  // end-to-end commit latency (client RTT and scheduling slack are the
  // only unmodeled terms). Encode and rebuild overlap the global span and
  // are excluded from the sum.
  double deviation_pct =
      run.mean_latency_ms > 0
          ? 100.0 * (total - encode - run.mean_latency_ms) /
                run.mean_latency_ms
          : 0;
  std::printf("breakdown sum %.1f ms vs end-to-end mean %.1f ms "
              "(%+.1f%% deviation)\n",
              total - encode, run.mean_latency_ms, deviation_pct);
  return 0;
}
