// Reproduces paper Figure 13: scaling behaviour of MassBFT vs Baseline.
//   (a) nodes per group 4 -> 40 (f = 1 -> 13), 3 groups:
//       Baseline FALLS (the leader ships f+1 copies per group on a fixed
//       20 Mbps uplink), MassBFT RISES with the aggregate group bandwidth
//       until per-transaction signature verification saturates the CPUs.
//   (b) groups 3 -> 7 (7 nodes each): both decline mildly as global Raft
//       overhead grows (paper: MassBFT -26.0%, Baseline -37.6%).

#include <cstdio>

#include "bench/bench_util.h"

using namespace massbft;
using namespace massbft::bench;

namespace {

OperatingPoint RunPoint(int groups, int nodes, ProtocolKind kind,
                        const BenchOptions& opts) {
  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(groups, nodes);
  config.protocol = ProtocolConfig::ForKind(kind);
  config.protocol.pipeline_depth = 8;
  config.workload = WorkloadKind::kYcsbA;
  config.duration = opts.fast ? 3 * kSecond : 5 * kSecond;
  config.warmup = 1 * kSecond;
  return FindKnee(config, opts.fast ? std::vector<int>{1000, 6000}
                                    : std::vector<int>{1000, 4000, 12000});
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);

  std::printf("=== Fig 13a: throughput vs nodes per group (3 groups) ===\n");
  TablePrinter table_a({"nodes_per_group", "f", "massbft_ktps",
                        "baseline_ktps"},
                       opts.csv);
  std::vector<int> node_counts =
      opts.fast ? std::vector<int>{4, 10, 16, 28}
                : std::vector<int>{4, 7, 10, 16, 22, 28, 34, 40};
  for (int nodes : node_counts) {
    OperatingPoint mass = RunPoint(3, nodes, ProtocolKind::kMassBft, opts);
    OperatingPoint base = RunPoint(3, nodes, ProtocolKind::kBaseline, opts);
    table_a.Row({std::to_string(nodes), std::to_string((nodes - 1) / 3),
                 TablePrinter::Num(mass.throughput_tps / 1000.0),
                 TablePrinter::Num(base.throughput_tps / 1000.0)});
  }

  std::printf("\n=== Fig 13b: throughput vs number of groups (7 nodes each) "
              "===\n");
  TablePrinter table_b({"groups", "massbft_ktps", "baseline_ktps"}, opts.csv);
  double mass3 = 0, base3 = 0, mass7 = 0, base7 = 0;
  std::vector<int> group_counts =
      opts.fast ? std::vector<int>{3, 5, 7} : std::vector<int>{3, 4, 5, 6, 7};
  for (int groups : group_counts) {
    OperatingPoint mass = RunPoint(groups, 7, ProtocolKind::kMassBft, opts);
    OperatingPoint base = RunPoint(groups, 7, ProtocolKind::kBaseline, opts);
    if (groups == 3) {
      mass3 = mass.throughput_tps;
      base3 = base.throughput_tps;
    }
    if (groups == 7) {
      mass7 = mass.throughput_tps;
      base7 = base.throughput_tps;
    }
    table_b.Row({std::to_string(groups),
                 TablePrinter::Num(mass.throughput_tps / 1000.0),
                 TablePrinter::Num(base.throughput_tps / 1000.0)});
  }
  if (!opts.csv && mass3 > 0 && base3 > 0)
    std::printf("\n3 -> 7 groups decline: MassBFT %.1f%% (paper 26.0%%), "
                "Baseline %.1f%% (paper 37.6%%)\n",
                100.0 * (1.0 - mass7 / mass3),
                100.0 * (1.0 - base7 / base3));
  return 0;
}
