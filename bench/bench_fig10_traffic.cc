// Reproduces paper Figure 10: WAN traffic consumed to replicate one entry,
// MassBFT (erasure-coded bijective) vs Baseline (leader sends f+1 full
// copies per group), at fixed batch sizes.
//
// Expected shape: MassBFT's per-entry WAN bytes undercut Baseline's at
// every batch size — the entry crosses the WAN as ~n_total/n_data ≈ 2.33
// copies per remote group (7-node groups) instead of f+1 = 3, and the
// Merkle proofs / certificate metadata add only a small constant.

#include <cstdio>

#include "bench/bench_util.h"
#include "replication/transfer_plan.h"

using namespace massbft;
using namespace massbft::bench;

namespace {

/// Runs a fixed-batch-size experiment and reports WAN bytes per proposed
/// entry (total WAN traffic of all nodes divided by entries, as in the
/// paper's measurement).
double WanBytesPerEntry(ProtocolConfig protocol, int batch_size,
                        const BenchOptions& opts) {
  ExperimentConfig config;
  config.topology = TopologyConfig::Nationwide(3, 7);
  config.protocol = std::move(protocol);
  config.protocol.max_batch_size = batch_size;
  config.protocol.pipeline_depth = 8;
  config.workload = WorkloadKind::kYcsbA;
  // Enough closed-loop clients that batches fill to max_batch_size.
  config.clients_per_group = batch_size * 12;
  config.duration = RunDuration(opts);
  config.warmup = WarmupDuration(opts);
  ExperimentResult result = RunOnce(std::move(config));
  return result.wan_bytes_per_entry;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::Parse(argc, argv);
  std::printf("=== Fig 10: WAN traffic per replicated entry (fixed batch "
              "sizes) ===\n");

  auto plan = TransferPlan::Create(7, 7);
  std::printf("transfer plan 7->7: %d chunks (%d data + %d parity), "
              "%.2f entry copies per remote group\n",
              plan->n_total(), plan->n_data(), plan->n_parity(),
              plan->EntryCopiesSent());

  TablePrinter table({"batch_txns", "entry_KB", "massbft_KB", "baseline_KB",
                      "ratio"},
                     opts.csv);
  for (int batch : {50, 100, 200, 400}) {
    double entry_kb = batch * 223 / 1000.0;  // ~201 B payload + headers.
    double massbft = WanBytesPerEntry(ProtocolConfig::MassBft(), batch, opts);
    double baseline =
        WanBytesPerEntry(ProtocolConfig::Baseline(), batch, opts);
    table.Row({std::to_string(batch), TablePrinter::Num(entry_kb),
               TablePrinter::Num(massbft / 1000.0),
               TablePrinter::Num(baseline / 1000.0),
               TablePrinter::Num(baseline > 0 ? massbft / baseline : 0, 2)});
  }
  return 0;
}
